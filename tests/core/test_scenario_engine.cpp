// Property tests for the multi-tag scenario engine:
//  * a one-tag scenario is bit-identical to the legacy single-tag simulator
//    (same RF scene, same noise draws, same receiver chain),
//  * K tags on K disjoint channels each decode exactly as they do solo
//    (spectrum separation really isolates them),
//  * the demod router, channel planner and audibility rules behave.
#include "core/scenario.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "audio/tone.h"
#include "fm/station_cache.h"
#include "tag/baseband.h"
#include "tag/channel_plan.h"

namespace fmbs::core {
namespace {

// ---- Bit-identity with the legacy simulator --------------------------------

TEST(ScenarioEngine, SingleTagBitIdenticalToSimulator) {
  SystemConfig cfg;
  cfg.station.program.genre = audio::ProgramGenre::kNews;
  cfg.station.program.stereo = false;
  cfg.station.seed = 5;
  cfg.scene.tag_power = units::Dbm{-35.0};
  cfg.scene.tag_rx_distance = units::Feet{6.0};
  cfg.scene.noise_seed = 99;

  const double duration = 0.4;
  const audio::MonoBuffer tone =
      audio::make_tone(3000.0, 0.8, duration, fm::kAudioRate);
  const dsp::rvec bb = tag::compose_overlay_baseband(tone, kOverlayLevel);

  const SimulationResult legacy = simulate(cfg, bb, units::Seconds{duration});
  const ScenarioResult sc =
      ScenarioEngine().run(scenario_from_system(cfg, bb, units::Seconds{duration}));

  ASSERT_EQ(sc.receivers.size(), 1U);
  const audio::MonoBuffer& a = legacy.backscatter_rx.mono;
  const audio::MonoBuffer& b = sc.receivers[0].capture.mono;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.samples[i], b.samples[i]) << "sample " << i;
  }
  // Stereo chain too: the full capture matches, not just the mono downmix.
  ASSERT_EQ(legacy.backscatter_rx.stereo.size(),
            sc.receivers[0].capture.stereo.size());
  for (std::size_t i = 0; i < legacy.backscatter_rx.stereo.size(); ++i) {
    ASSERT_EQ(legacy.backscatter_rx.stereo.left[i],
              sc.receivers[0].capture.stereo.left[i]) << "L sample " << i;
  }
}

TEST(ScenarioEngine, BridgeCarriesAmbientReceiverAndFading) {
  SystemConfig cfg;
  cfg.station.program.genre = audio::ProgramGenre::kNews;
  cfg.station.program.stereo = false;
  cfg.station.seed = 6;
  cfg.scene.noise_seed = 7;
  cfg.scene.fading = channel::fading_for_mobility(channel::Mobility::kWalking);
  cfg.capture_ambient_receiver = true;

  const double duration = 0.3;
  const audio::MonoBuffer tone =
      audio::make_tone(2000.0, 0.8, duration, fm::kAudioRate);
  const dsp::rvec bb = tag::compose_overlay_baseband(tone, kOverlayLevel);

  const SimulationResult legacy = simulate(cfg, bb, units::Seconds{duration});
  const ScenarioResult sc =
      ScenarioEngine().run(scenario_from_system(cfg, bb, units::Seconds{duration}));

  ASSERT_TRUE(legacy.ambient_rx.has_value());
  ASSERT_EQ(sc.receivers.size(), 2U);
  const audio::MonoBuffer& a = legacy.ambient_rx->mono;
  const audio::MonoBuffer& b = sc.receivers[1].capture.mono;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.samples[i], b.samples[i]) << "ambient sample " << i;
  }
  const audio::MonoBuffer& ab = legacy.backscatter_rx.mono;
  const audio::MonoBuffer& bb2 = sc.receivers[0].capture.mono;
  ASSERT_EQ(ab.size(), bb2.size());
  for (std::size_t i = 0; i < ab.size(); ++i) {
    ASSERT_EQ(ab.samples[i], bb2.samples[i]) << "backscatter sample " << i;
  }
}

// ---- Disjoint channels isolate tags ----------------------------------------

Scenario disjoint_scenario(std::size_t num_tags) {
  Scenario sc;
  sc.name = "disjoint";
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 33;
  sc.seed = 33;
  sc.duration = units::Seconds{0.25};
  const auto plan = tag::plan_subcarrier_channels(num_tags);
  for (std::size_t i = 0; i < num_tags; ++i) {
    ScenarioTag t;
    t.name = "tag" + std::to_string(i);
    t.subcarrier = plan[i].subcarrier;
    t.rate = tag::DataRate::k1600bps;
    t.num_bits = 96;
    t.tag_power = units::Dbm{-35.0};
    t.distance_override = units::Feet{6.0};
    sc.tags.push_back(std::move(t));
    sc.receivers.push_back(phone_listening_to(plan[i].subcarrier));
  }
  return sc;
}

TEST(ScenarioEngine, DisjointChannelTagsMatchTheirSoloRuns) {
  constexpr std::size_t kTags = 3;
  const Scenario all = disjoint_scenario(kTags);
  const ScenarioEngine engine;
  const ScenarioResult together = engine.run(all);
  ASSERT_EQ(together.best_per_tag.size(), kTags);

  for (std::size_t i = 0; i < kTags; ++i) {
    // Solo run: same tag, same seeds (explicitly pinned to the multi-run
    // derived values so content and noise draws are unchanged), same rx.
    Scenario solo = all;
    solo.tags = {all.tags[i]};
    solo.tags[0].seed = derive_seed(all.seed, 0x1000 + i);
    solo.receivers = {all.receivers[i]};
    solo.receivers[0].noise_seed = derive_seed(all.seed, 0x3000 + i);
    const ScenarioResult alone = engine.run(solo);
    ASSERT_EQ(alone.best_per_tag.size(), 1U);

    const auto& multi = together.best_per_tag[i];
    const auto& single = alone.best_per_tag[0];
    EXPECT_EQ(multi.tag_index, i);
    // Spectrum separation: adjacent-channel leakage must not flip any bit
    // relative to the tag running alone.
    EXPECT_EQ(multi.burst.ber.bit_errors, single.burst.ber.bit_errors) << i;
    EXPECT_EQ(multi.burst.ber.bits_compared, single.burst.ber.bits_compared) << i;
    EXPECT_EQ(multi.burst.ber.bit_errors, 0U) << "link should be clean at -35 dBm";
  }
}

// ---- Same-channel collision is physical ------------------------------------

TEST(ScenarioEngine, SameChannelOverlapCollidesAndStaggerRecovers) {
  Scenario sc;
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 21;  // a quiet program stretch under the burst window
  sc.seed = 21;
  sc.duration = units::Seconds{0.35};
  for (int i = 0; i < 2; ++i) {
    ScenarioTag t;
    t.name = i == 0 ? "a" : "b";
    t.rate = tag::DataRate::k1600bps;  // robust solo at this power/range
    t.num_bits = 128;
    t.tag_power = units::Dbm{-20.0};
    t.distance_override = units::Feet{3.0};
    t.start = units::Seconds{0.0};  // fully overlapping bursts
    sc.tags.push_back(std::move(t));
  }
  ScenarioReceiver rx;
  rx.tune_offset = units::Hertz{sc.tags[0].subcarrier.shift.raw()};
  sc.receivers.push_back(rx);

  const ScenarioEngine engine;
  const ScenarioResult collided = engine.run(sc);
  ASSERT_EQ(collided.best_per_tag.size(), 2U);
  // Equal-power overlap on one channel destroys both packets.
  for (const auto& link : collided.best_per_tag) {
    EXPECT_GT(link.burst.ber.ber, 0.08) << "collision should corrupt the payload";
    EXPECT_EQ(link.burst.packets_ok, 0U);
  }

  // Stagger the second tag clear of the first: both decode cleanly.
  Scenario staggered = sc;
  staggered.tags[1].start = units::Seconds{0.15};  // 128 bits @ 1.6 kbps = 80 ms
  const ScenarioResult apart = engine.run(staggered);
  ASSERT_EQ(apart.best_per_tag.size(), 2U);
  for (const auto& link : apart.best_per_tag) {
    EXPECT_EQ(link.burst.ber.bit_errors, 0U)
        << "staggered burst should be clean, tag " << link.tag_index;
  }
  EXPECT_GT(apart.aggregate_goodput_bps, collided.aggregate_goodput_bps);
}

// ---- Channel planner -------------------------------------------------------

TEST(ChannelPlan, DisjointUpToCapacityThenShared) {
  const std::size_t cap = tag::max_disjoint_channels();
  EXPECT_EQ(cap, 8U);  // 4 raster channels x 2 signs at the 2.4 MHz scene

  const auto four = tag::plan_subcarrier_channels(4);
  for (const auto& a : four) {
    EXPECT_EQ(a.subcarrier.mode, tag::SubcarrierMode::kBandlimitedSquare);
    EXPECT_FALSE(a.shared);
    EXPECT_GE(std::abs(a.subcarrier.shift.raw()), 400000.0);
  }

  const auto eight = tag::plan_subcarrier_channels(8);
  std::set<double> shifts;
  for (const auto& a : eight) {
    EXPECT_EQ(a.subcarrier.mode, tag::SubcarrierMode::kSingleSideband);
    EXPECT_FALSE(a.shared);
    shifts.insert(a.subcarrier.shift.raw());
  }
  EXPECT_EQ(shifts.size(), 8U);  // all distinct signed channels

  const auto ten = tag::plan_subcarrier_channels(10);
  EXPECT_FALSE(ten[7].shared);
  EXPECT_TRUE(ten[8].shared);  // band full: round-robin reuse
  EXPECT_TRUE(ten[9].shared);
  EXPECT_EQ(ten[8].subcarrier.shift.raw(), ten[0].subcarrier.shift.raw());

  EXPECT_THROW(tag::plan_subcarrier_channels(0), std::invalid_argument);
}

TEST(ChannelPlan, AudibilityFollowsWaveformMirrors) {
  ScenarioTag square;
  square.subcarrier.shift = units::Hertz{600000.0};
  square.subcarrier.mode = tag::SubcarrierMode::kBandlimitedSquare;
  EXPECT_TRUE(tag_audible_at(square, units::Hertz{600000.0}));
  EXPECT_TRUE(tag_audible_at(square, units::Hertz{-600000.0}));  // mirror copy
  EXPECT_FALSE(tag_audible_at(square, units::Hertz{400000.0}));
  EXPECT_FALSE(tag_audible_at(square, units::Hertz{0.0}));  // ambient rx hears no tag data

  ScenarioTag ssb = square;
  ssb.subcarrier.mode = tag::SubcarrierMode::kSingleSideband;
  EXPECT_TRUE(tag_audible_at(ssb, units::Hertz{600000.0}));
  EXPECT_FALSE(tag_audible_at(ssb, units::Hertz{-600000.0}));  // mirror suppressed
}

// ---- Multi-station scenes ---------------------------------------------------

ScenarioStation make_station(const std::string& name, double offset_hz,
                             double power_dbm, std::uint64_t seed,
                             audio::ProgramGenre genre) {
  ScenarioStation st;
  st.name = name;
  st.offset = units::Hertz{offset_hz};
  st.power = units::Dbm{power_dbm};
  st.config.program.genre = genre;
  st.config.program.stereo = false;
  st.config.seed = seed;
  return st;
}

TEST(ScenarioMultiStation, StationPowerFollowsGeometry) {
  ScenarioStation far = make_station("far", 0.0, -30.0, 1,
                                     audio::ProgramGenre::kNews);
  // Far field: uniform everywhere.
  EXPECT_DOUBLE_EQ(station_power_at(far, {0.0, 0.0}).raw(), -30.0);
  EXPECT_DOUBLE_EQ(station_power_at(far, {500.0, -200.0}).raw(), -30.0);

  ScenarioStation near = far;
  near.position = ScenePosition{100.0, 0.0};
  // At the origin the reference power holds; half the distance = +6 dB.
  EXPECT_NEAR(station_power_at(near, {0.0, 0.0}).raw(), -30.0, 1e-12);
  EXPECT_NEAR(station_power_at(near, {50.0, 0.0}).raw(),
              -30.0 + 20.0 * std::log10(2.0),
              1e-9);
  EXPECT_LT(station_power_at(near, {-100.0, 0.0}).raw(), -36.0);
}

TEST(ScenarioMultiStation, TagsSelectTheStrongestStation) {
  Scenario sc;
  sc.seed = 91;
  ScenarioStation a =
      make_station("west", 0.0, -28.0, 91, audio::ProgramGenre::kNews);
  a.position = ScenePosition{-60.0, 0.0};
  ScenarioStation b =
      make_station("east", 800e3, -30.0, 92, audio::ProgramGenre::kPop);
  b.position = ScenePosition{60.0, 0.0};
  sc.stations = {a, b};
  sc.settle = units::Seconds{0.0};
  sc.duration = units::Seconds{0.05};
  for (const double x : {-10.0, 10.0}) {
    ScenarioTag t;
    t.name = x < 0 ? "west-tag" : "east-tag";
    t.position = {x, 0.0};
    t.custom_baseband = dsp::rvec(1, 0.0F);  // unmodulated: selection only
    sc.tags.push_back(std::move(t));
  }
  // A third tag pinned against the geometric choice.
  ScenarioTag pinned = sc.tags[1];
  pinned.name = "pinned-west";
  pinned.station_index = 0;
  sc.tags.push_back(std::move(pinned));
  sc.receivers.emplace_back();

  const ScenarioResult r = ScenarioEngine({.keep_captures = false}).run(sc);
  ASSERT_EQ(r.selected_station.size(), 3U);
  EXPECT_EQ(r.selected_station[0], 0);  // west tag hears the west station best
  EXPECT_EQ(r.selected_station[1], 1);  // east tag flips to the east station
  EXPECT_EQ(r.selected_station[2], 0);  // explicit index wins
  ASSERT_EQ(r.station_renders.size(), 2U);
  EXPECT_EQ(r.station, r.station_renders[0]);
}

// The acceptance property of the multi-station scene: spectrally disjoint
// stations superpose linearly — each receiver's capture matches the
// corresponding single-station run to within the tuner's adjacent-channel
// leakage (the only path by which the other station can reach it).
TEST(ScenarioMultiStation, DisjointStationsSuperposeWithinTunerLeakage) {
  const ScenarioStation a =
      make_station("A", 0.0, -30.0, 61, audio::ProgramGenre::kNews);
  const ScenarioStation b =
      make_station("B", 800e3, -33.0, 62, audio::ProgramGenre::kPop);

  Scenario both;
  both.name = "two-station";
  both.seed = 61;
  both.stations = {a, b};
  both.duration = units::Seconds{0.25};
  ScenarioTag t;
  t.name = "tag";
  t.subcarrier.shift = units::Hertz{400e3};  // station A's tag, channel at +400 kHz
  t.rate = tag::DataRate::k1600bps;
  t.num_bits = 96;
  t.distance_override = units::Feet{4.0};
  t.seed = 777;  // pinned so the solo run reuses the same content
  both.tags = {t};
  ScenarioReceiver rx_tag = phone_listening_to(t.subcarrier);
  rx_tag.name = "tag-rx";
  rx_tag.noise_seed = 5001;
  ScenarioReceiver rx_b;
  rx_b.name = "b-rx";
  rx_b.tune_offset = units::Hertz{b.offset.raw()};  // parked on station B's carrier
  rx_b.noise_seed = 5002;
  both.receivers = {rx_tag, rx_b};

  const ScenarioEngine engine;
  const ScenarioResult r_both = engine.run(both);

  Scenario only_a = both;
  only_a.stations = {a};
  only_a.receivers = {rx_tag};
  const ScenarioResult r_a = engine.run(only_a);

  Scenario only_b = both;
  only_b.stations = {b};
  only_b.tags.clear();  // the tag belongs to station A's scene
  only_b.receivers = {rx_b};
  const ScenarioResult r_b = engine.run(only_b);

  // The tag decodes identically with and without the far station on air.
  ASSERT_EQ(r_both.best_per_tag.size(), 1U);
  ASSERT_EQ(r_a.best_per_tag.size(), 1U);
  EXPECT_EQ(r_both.best_per_tag[0].burst.ber.bit_errors,
            r_a.best_per_tag[0].burst.ber.bit_errors);
  EXPECT_EQ(r_both.best_per_tag[0].burst.ber.bit_errors, 0U);

  // Relative RMS error over [t0, t1): comparisons are windowed to where a
  // deterministic signal dominates the channel — outside a burst the FM
  // demodulator outputs pure receiver noise, which is chaotic under any
  // perturbation and says nothing about superposition.
  auto rel_rms_diff = [](const audio::MonoBuffer& x, const audio::MonoBuffer& y,
                         double t0, double t1) {
    EXPECT_EQ(x.size(), y.size());
    const auto i0 = static_cast<std::size_t>(t0 * fm::kAudioRate);
    const auto i1 = std::min(static_cast<std::size_t>(t1 * fm::kAudioRate),
                             std::min(x.size(), y.size()));
    double err = 0.0, sig = 0.0;
    for (std::size_t i = i0; i < i1; ++i) {
      const double d =
          static_cast<double>(x.samples[i]) - static_cast<double>(y.samples[i]);
      err += d * d;
      sig += static_cast<double>(x.samples[i]) * x.samples[i];
    }
    return std::sqrt(err / std::max(sig, 1e-30));
  };
  // 70 dB of tuner stopband keeps the cross-station error orders of
  // magnitude below the wanted audio (measured ~8e-5 / ~5e-6 here).
  EXPECT_LT(rel_rms_diff(r_both.receivers[0].capture.mono,
                         r_a.receivers[0].capture.mono, 0.085, 0.14),
            1e-3);  // the tag burst window
  EXPECT_LT(rel_rms_diff(r_both.receivers[1].capture.mono,
                         r_b.receivers[0].capture.mono, 0.02, 0.33),
            1e-4);  // station B program, past the front-end warm-up
}

TEST(ScenarioMultiStation, AudibilityFollowsTheStationOffset) {
  ScenarioTag square;
  square.subcarrier.shift = units::Hertz{600e3};
  square.subcarrier.mode = tag::SubcarrierMode::kBandlimitedSquare;
  // Station at -800 kHz: mirror channels land at -200 kHz and -1.4 MHz.
  EXPECT_TRUE(tag_audible_at(square, units::Hertz{-800e3}, units::Hertz{-200e3}));
  EXPECT_TRUE(tag_audible_at(square, units::Hertz{-800e3}, units::Hertz{-1400e3}));
  EXPECT_FALSE(tag_audible_at(square, units::Hertz{-800e3}, units::Hertz{600e3}));
  EXPECT_FALSE(tag_audible_at(square, units::Hertz{-800e3}, units::Hertz{-800e3}));  // the carrier itself

  ScenarioTag ssb = square;
  ssb.subcarrier.mode = tag::SubcarrierMode::kSingleSideband;
  ssb.subcarrier.shift = units::Hertz{-600e3};
  EXPECT_TRUE(tag_audible_at(ssb, units::Hertz{800e3}, units::Hertz{200e3}));
  EXPECT_FALSE(tag_audible_at(ssb, units::Hertz{800e3}, units::Hertz{1400e3}));  // mirror suppressed
}

TEST(ScenarioMultiStation, StationsFromSurveyMapTheNeighborhood) {
  survey::CitySpectrum city;
  city.name = "Testville";
  city.detectable_channels = {48, 49, 51, 53, 90};
  city.detectable_power_dbm = {-50.0, -25.0, -60.0, -40.0, -20.0};

  const auto stations = stations_from_survey(city, 49);
  // Channel 90 is 8.2 MHz up-band: outside the 2.4 MHz scene.
  ASSERT_EQ(stations.size(), 4U);
  // Sorted by |offset|: the listen channel itself is station 0.
  EXPECT_DOUBLE_EQ(stations[0].offset.raw(), 0.0);
  EXPECT_DOUBLE_EQ(stations[0].power.raw(), -25.0);
  EXPECT_DOUBLE_EQ(stations[1].offset.raw(), -200e3);
  EXPECT_DOUBLE_EQ(stations[1].power.raw(), -50.0);
  EXPECT_DOUBLE_EQ(stations[2].offset.raw(), 400e3);
  EXPECT_DOUBLE_EQ(stations[3].offset.raw(), 800e3);
  // Distinct deterministic content per channel.
  std::set<std::uint64_t> seeds;
  for (const auto& st : stations) seeds.insert(st.config.seed);
  EXPECT_EQ(seeds.size(), stations.size());
  // A tighter cap trims the scene.
  EXPECT_EQ(stations_from_survey(city, 49, units::Hertz{300e3}).size(), 2U);
  // An empty scene is a misconfiguration, not legacy single-station mode.
  EXPECT_THROW(stations_from_survey(city, 0, units::Hertz{100e3}), std::invalid_argument);
}

// Regression: a surveyed channel outside the scene bandwidth must never be
// clamped or aliased onto a wrong in-scene carrier — it is excluded, and the
// exclusion is reported instead of silent.
TEST(ScenarioMultiStation, SurveyReportsTheStationsItCannotPlace) {
  survey::CitySpectrum city;
  city.name = "Testville";
  city.detectable_channels = {48, 49, 51, 53, 90};
  city.detectable_power_dbm = {-50.0, -25.0, -60.0, -40.0, -20.0};

  const SurveySceneReport report = stations_from_survey_report(city, 49);
  EXPECT_EQ(report.stations.size(), 4U);
  ASSERT_EQ(report.warnings.size(), 1U);  // channel 90, 8.2 MHz up-band
  EXPECT_NE(report.warnings[0].find("Testville@"), std::string::npos);
  EXPECT_NE(report.warnings[0].find("skipped"), std::string::npos);

  // A caller-supplied cap wider than the scene clamps to the scene: the
  // strong out-of-scene station stays excluded, never aliased in.
  const SurveySceneReport wide = stations_from_survey_report(city, 49, units::Hertz{100e6});
  EXPECT_EQ(wide.stations.size(), 4U);
  EXPECT_EQ(wide.warnings.size(), 1U);
  for (const ScenarioStation& st : wide.stations) {
    EXPECT_LE(std::abs(st.offset.raw()), kMaxStationOffsetHz);
  }
  // Every scene the report builds is one the engine accepts (nothing inside
  // can trip the engine's own offset validation).
  const SurveySceneReport tight = stations_from_survey_report(city, 49, units::Hertz{300e3});
  EXPECT_EQ(tight.stations.size(), 2U);
  EXPECT_EQ(tight.warnings.size(), 3U);  // channels 51, 53 and 90 trimmed

  // The plain vector API is the report's stations, warnings dropped.
  EXPECT_EQ(stations_from_survey(city, 49).size(), report.stations.size());
}

// ---- Validation ------------------------------------------------------------

TEST(ScenarioEngine, RejectsInconsistentScenarios) {
  const ScenarioEngine engine;
  Scenario sc;
  EXPECT_THROW(engine.run(sc), std::invalid_argument);  // no receivers

  sc.receivers.emplace_back();
  sc.duration = units::Seconds{0.0};
  EXPECT_THROW(engine.run(sc), std::invalid_argument);

  sc.duration = units::Seconds{0.1};
  ScenarioTag t;
  t.num_bits = 6400;  // 2 s at 3.2 kbps cannot fit in 0.1 s
  t.rate = tag::DataRate::k3200bps;
  sc.tags.push_back(t);
  EXPECT_THROW(engine.run(sc), std::invalid_argument);

  // A station carrier parked outside the 2.4 MHz scene would alias.
  Scenario wide;
  wide.receivers.emplace_back();
  wide.stations.push_back(make_station("edge", 1.2e6, -30.0, 1,
                                       audio::ProgramGenre::kSilence));
  EXPECT_THROW(engine.run(wide), std::invalid_argument);

  // A tag pinned to a station index the scene does not have.
  Scenario bad_index;
  bad_index.receivers.emplace_back();
  bad_index.stations.push_back(make_station("only", 0.0, -30.0, 1,
                                            audio::ProgramGenre::kSilence));
  ScenarioTag pinned;
  pinned.custom_baseband = dsp::rvec(1, 0.0F);
  pinned.station_index = 3;
  bad_index.tags.push_back(std::move(pinned));
  EXPECT_THROW(engine.run(bad_index), std::invalid_argument);
}

// Unit validation at the config boundary: durations and windows that the
// strong types can represent but the engine cannot honor are rejected before
// any rendering starts (previously a negative settle silently corrupted the
// timeline; a zero duration divided the goodput by zero).
TEST(ScenarioEngine, RejectsNonPositiveDurationAndNegativeSettle) {
  Scenario base;
  base.receivers.emplace_back();
  base.stations.push_back(make_station("st", 0.0, -30.0, 1,
                                       audio::ProgramGenre::kSilence));

  Scenario zero_duration = base;
  zero_duration.duration = units::Seconds{0.0};
  EXPECT_THROW(resolve_scenario_plan(zero_duration), std::invalid_argument);

  Scenario negative_duration = base;
  negative_duration.duration = units::Seconds{-0.5};
  EXPECT_THROW(resolve_scenario_plan(negative_duration), std::invalid_argument);

  Scenario negative_settle = base;
  negative_settle.duration = units::Seconds{0.2};
  negative_settle.settle = units::Seconds{-0.05};
  EXPECT_THROW(resolve_scenario_plan(negative_settle), std::invalid_argument);

  // The same shape with a legal settle resolves fine.
  Scenario ok = base;
  ok.duration = units::Seconds{0.2};
  ok.settle = units::Seconds{0.05};
  EXPECT_NO_THROW(resolve_scenario_plan(ok));
}

}  // namespace
}  // namespace fmbs::core
