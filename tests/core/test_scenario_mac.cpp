// The segmented timeline and the MAC layer through the full engine:
//  * a static scenario renders bit-identically with and without timeline
//    segmentation (geometry re-evaluation must be a no-op when nothing
//    moves),
//  * a walking tag hands off between stations mid-run (the segments record
//    the flip) and a burst spanning a segment boundary decodes seam-free,
//  * carrier-sense LBT defers around a neighbor's burst and beats pure
//    ALOHA's collision BER in a 2-tag contention scene,
//  * slotted ALOHA quantizes the burst start inside the engine,
//  * timeline/MAC misconfigurations are rejected loudly.
#include "core/scenario.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fmbs::core {
namespace {

// ---- Waypoint geometry ------------------------------------------------------

TEST(ScenarioTimeline, PathPositionWalksTheWaypoints) {
  const ScenePosition anchor{0.0, 0.0};
  EXPECT_DOUBLE_EQ(path_position(anchor, {}, 0.7).x_m, 0.0);

  const std::vector<ScenePosition> one{{10.0, -4.0}};
  EXPECT_DOUBLE_EQ(path_position(anchor, one, 0.0).x_m, 0.0);
  EXPECT_DOUBLE_EQ(path_position(anchor, one, 0.5).x_m, 5.0);
  EXPECT_DOUBLE_EQ(path_position(anchor, one, 0.5).y_m, -2.0);
  EXPECT_DOUBLE_EQ(path_position(anchor, one, 1.0).x_m, 10.0);
  // Clamped outside [0, 1].
  EXPECT_DOUBLE_EQ(path_position(anchor, one, 1.7).x_m, 10.0);
  EXPECT_DOUBLE_EQ(path_position(anchor, one, -0.2).x_m, 0.0);

  // Two legs, equal time each: u = 0.5 is the first waypoint.
  const std::vector<ScenePosition> two{{10.0, 0.0}, {10.0, 20.0}};
  EXPECT_DOUBLE_EQ(path_position(anchor, two, 0.5).x_m, 10.0);
  EXPECT_DOUBLE_EQ(path_position(anchor, two, 0.5).y_m, 0.0);
  EXPECT_DOUBLE_EQ(path_position(anchor, two, 0.75).y_m, 10.0);
}

// ---- Segmentation is bit-identical when nothing moves -----------------------

Scenario static_two_station_scene() {
  Scenario sc;
  sc.name = "static-scene";
  sc.seed = 71;
  sc.duration = units::Seconds{0.3};
  ScenarioStation west;
  west.name = "west";
  west.config.program.genre = audio::ProgramGenre::kNews;
  west.config.program.stereo = false;
  west.config.seed = 71;
  west.power = units::Dbm{-28.0};
  west.position = ScenePosition{-60.0, 0.0};
  ScenarioStation east = west;
  east.name = "east";
  east.config.program.genre = audio::ProgramGenre::kPop;
  east.config.seed = 72;
  east.offset = units::Hertz{800e3};
  east.power = units::Dbm{-30.0};
  east.position = ScenePosition{60.0, 0.0};
  sc.stations = {west, east};

  ScenarioTag t;
  t.name = "tag";
  t.rate = tag::DataRate::k1600bps;
  t.num_bits = 96;
  t.position = {-10.0, 0.0};
  sc.tags.push_back(std::move(t));
  ScenarioReceiver rx = phone_listening_to(sc.tags[0].subcarrier);
  rx.position = {-10.0, 1.5};
  sc.receivers.push_back(std::move(rx));
  return sc;
}

TEST(ScenarioTimeline, SegmentingAStaticSceneIsBitIdentical) {
  const Scenario flat = static_two_station_scene();
  Scenario segmented = flat;
  segmented.timeline.segment = units::Seconds{0.1};

  const ScenarioEngine engine;
  const ScenarioResult a = engine.run(flat);
  const ScenarioResult b = engine.run(segmented);

  ASSERT_EQ(a.segments.size(), 1U);
  EXPECT_EQ(b.segments.size(), 4U);  // 0.38 s total -> 4 x 0.1 s segments
  for (const auto& seg : b.segments) {
    ASSERT_EQ(seg.selected_station.size(), 1U);
    EXPECT_EQ(seg.selected_station[0], a.selected_station[0]);
  }
  const audio::MonoBuffer& ma = a.receivers[0].capture.mono;
  const audio::MonoBuffer& mb = b.receivers[0].capture.mono;
  ASSERT_EQ(ma.size(), mb.size());
  for (std::size_t i = 0; i < ma.size(); ++i) {
    ASSERT_EQ(ma.samples[i], mb.samples[i]) << "sample " << i;
  }
  ASSERT_EQ(a.best_per_tag.size(), 1U);
  ASSERT_EQ(b.best_per_tag.size(), 1U);
  EXPECT_EQ(a.best_per_tag[0].burst.ber.bit_errors,
            b.best_per_tag[0].burst.ber.bit_errors);
}

// ---- Mobility: handoff and seam-free bursts ---------------------------------

TEST(ScenarioTimeline, WalkingTagHandsOffBetweenStations) {
  Scenario sc = static_two_station_scene();
  sc.name = "walking";
  sc.duration = units::Seconds{0.4};  // 0.48 s total -> 5 segments
  sc.timeline.segment = units::Seconds{0.1};
  sc.tags[0].position = {-20.0, 0.0};
  sc.tags[0].waypoints = {{20.0, 0.0}};  // west side to east side
  sc.tags[0].distance_override = units::Feet{4.0};  // constant link, moving selection
  sc.tags[0].start = units::Seconds{0.0};           // burst while still west-side

  const ScenarioResult r = ScenarioEngine().run(sc);
  ASSERT_EQ(r.segments.size(), 5U);
  EXPECT_EQ(r.segments.front().selected_station[0], 0);  // starts west
  EXPECT_EQ(r.segments.back().selected_station[0], 1);   // ends east
  // Exactly one handoff along a monotone walk.
  int flips = 0;
  for (std::size_t k = 1; k < r.segments.size(); ++k) {
    if (r.segments[k].selected_station[0] !=
        r.segments[k - 1].selected_station[0]) {
      ++flips;
    }
  }
  EXPECT_EQ(flips, 1);
  // The legacy field reports the first segment.
  EXPECT_EQ(r.selected_station[0], 0);
  // The early burst (while west-selected) still decodes on west's channel.
  ASSERT_EQ(r.best_per_tag.size(), 1U);
  EXPECT_EQ(r.best_per_tag[0].burst.ber.bit_errors, 0U);
}

TEST(ScenarioTimeline, BurstSpanningASegmentBoundaryDecodesSeamFree) {
  // Legacy single-station scene, geometric link (no distance override): the
  // tag walks away from the phone, so g_back really changes at every
  // segment boundary while one burst straddles two of them.
  Scenario sc;
  sc.name = "seam";
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 81;
  sc.seed = 81;
  sc.duration = units::Seconds{0.4};
  sc.timeline.segment = units::Seconds{0.1};
  ScenarioTag t;
  t.name = "walker";
  t.rate = tag::DataRate::k1600bps;
  t.num_bits = 128;  // 80 ms: starts in one segment, ends in the next
  t.tag_power = units::Dbm{-25.0};
  t.position = {0.0, 0.0};
  t.waypoints = {{1.5, 0.0}};
  t.start = units::Seconds{0.05};  // absolute 0.13 -> payload spans the 0.2 s boundary
  sc.tags.push_back(std::move(t));
  ScenarioReceiver rx = phone_listening_to(sc.tags[0].subcarrier);
  rx.position = {0.6, 0.9};
  sc.receivers.push_back(std::move(rx));

  const ScenarioResult r = ScenarioEngine({.keep_captures = false}).run(sc);
  ASSERT_EQ(r.best_per_tag.size(), 1U);
  EXPECT_EQ(r.best_per_tag[0].burst.ber.bit_errors, 0U)
      << "a geometry switch at a segment boundary must not corrupt a burst";
}

// ---- Carrier sense beats pure ALOHA on a contended channel ------------------

Scenario contention_scene(tag::MacKind second_tag_mac) {
  Scenario sc;
  sc.name = "contention";
  sc.station.program.genre = audio::ProgramGenre::kSilence;
  sc.station.program.stereo = false;
  sc.station.seed = 41;
  sc.seed = 41;
  sc.duration = units::Seconds{0.45};
  sc.timeline.segment = units::Seconds{0.1};
  const double starts[2] = {0.0, 0.03};  // overlapping nominal bursts
  for (int i = 0; i < 2; ++i) {
    ScenarioTag t;
    // assign(1, ch) rather than `= i == 0 ? "a" : "b"`: GCC 12 at -O2 emits
    // a bogus -Wrestrict through the inlined literal operator= (PR 105329).
    t.name.assign(1, i == 0 ? 'a' : 'b');
    t.rate = tag::DataRate::k1600bps;
    t.num_bits = 128;  // 80 ms on the air
    t.tag_power = units::Dbm{-25.0};
    t.distance_override = units::Feet{3.0};
    t.position = {static_cast<double>(i), 0.0};  // 1 m apart: B hears A
    t.start = units::Seconds{starts[i]};
    if (i == 1) t.mac.kind = second_tag_mac;
    sc.tags.push_back(std::move(t));
  }
  sc.receivers.push_back(phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

TEST(ScenarioMac, CarrierSenseAvoidsTheCollisionPureAlohaSuffers) {
  const ScenarioEngine engine({.keep_captures = false});

  const ScenarioResult aloha = engine.run(contention_scene(tag::MacKind::kPureAloha));
  ASSERT_EQ(aloha.best_per_tag.size(), 2U);
  for (const auto& link : aloha.best_per_tag) {
    EXPECT_GT(link.burst.ber.ber, 0.08)
        << "equal-power overlap should corrupt tag " << link.tag_index;
  }
  EXPECT_EQ(aloha.mac[1].deferrals, 0U);

  const ScenarioResult lbt =
      engine.run(contention_scene(tag::MacKind::kCarrierSense));
  ASSERT_EQ(lbt.best_per_tag.size(), 2U);
  // B sensed A's burst across two segments and deferred clear of it.
  EXPECT_TRUE(lbt.mac[1].transmitted);
  EXPECT_EQ(lbt.mac[1].deferrals, 2U);
  EXPECT_DOUBLE_EQ(lbt.mac[1].start_seconds, 0.3);
  for (const auto& link : lbt.best_per_tag) {
    EXPECT_EQ(link.burst.ber.bit_errors, 0U)
        << "LBT should clear the channel for tag " << link.tag_index;
  }
  EXPECT_GT(lbt.aggregate_goodput_bps, aloha.aggregate_goodput_bps);
}

TEST(ScenarioMac, SlottedAlohaQuantizesTheStartInsideTheEngine) {
  Scenario sc;
  sc.name = "slotted";
  sc.station.program.genre = audio::ProgramGenre::kSilence;
  sc.station.program.stereo = false;
  sc.station.seed = 43;
  sc.seed = 43;
  sc.duration = units::Seconds{0.4};
  ScenarioTag t;
  t.name = "s";
  t.rate = tag::DataRate::k1600bps;
  t.num_bits = 96;
  t.tag_power = units::Dbm{-25.0};
  t.distance_override = units::Feet{3.0};
  t.start = units::Seconds{0.0};  // nominal absolute start 0.08 (the settle window)
  t.mac.kind = tag::MacKind::kSlottedAloha;
  t.mac.slot = units::Seconds{0.15};
  sc.tags.push_back(std::move(t));
  sc.receivers.push_back(phone_listening_to(sc.tags[0].subcarrier));

  const ScenarioResult r = ScenarioEngine({.keep_captures = false}).run(sc);
  // Slot grid is absolute (settle included): 0.08 quantizes up to 0.15.
  ASSERT_EQ(r.mac.size(), 1U);
  EXPECT_DOUBLE_EQ(r.mac[0].start_seconds, 0.15);
  ASSERT_EQ(r.best_per_tag.size(), 1U);
  EXPECT_EQ(r.best_per_tag[0].burst.ber.bit_errors, 0U)
      << "the demodulator must follow the slotted start";
}

TEST(ScenarioMac, CarrierSenseGivesUpWhenTheWindowCloses) {
  // A hogs the channel with one long burst; B carrier-senses and runs out
  // of scenario before the channel clears — silent, reported, no throw.
  Scenario sc = contention_scene(tag::MacKind::kCarrierSense);
  sc.tags[0].num_bits = 512;  // 320 ms: busy until t = 0.41 of 0.53 total
  const ScenarioResult r = ScenarioEngine({.keep_captures = false}).run(sc);
  EXPECT_FALSE(r.mac[1].transmitted);
  EXPECT_GT(r.mac[1].deferrals, 0U);
  // The silent tag produces no link report; A decodes clean.
  ASSERT_EQ(r.best_per_tag.size(), 1U);
  EXPECT_EQ(r.best_per_tag[0].tag_index, 0U);
  EXPECT_EQ(r.best_per_tag[0].burst.ber.bit_errors, 0U);
}

// ---- Validation -------------------------------------------------------------

TEST(ScenarioTimeline, RejectsBadSegmentLengthsAndTimelessCarrierSense) {
  const ScenarioEngine engine;
  Scenario sc = contention_scene(tag::MacKind::kPureAloha);

  sc.timeline.segment = units::Seconds{0.05};  // below the 0.1 s streaming block
  EXPECT_THROW(engine.run(sc), std::invalid_argument);
  sc.timeline.segment = units::Seconds{0.15};  // not a block multiple
  EXPECT_THROW(engine.run(sc), std::invalid_argument);
  sc.timeline.segment = units::Seconds{-0.1};
  EXPECT_THROW(engine.run(sc), std::invalid_argument);

  // Carrier sense with no timeline cannot listen to anything.
  Scenario cs = contention_scene(tag::MacKind::kCarrierSense);
  cs.timeline.segment = units::Seconds{0.0};
  EXPECT_THROW(engine.run(cs), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::core
