// Scenario-level sweeps: run_scenario_sweep / run_scenario_grid put whole
// Scenarios through the SweepRunner pool with the same two guarantees the
// point-level engine has — bit-identical results at any thread count
// (seeds derive from grid position, never scheduling) and one shared
// fm::StationCache render per station across every point of the sweep.
#include "core/scenario.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fm/station_cache.h"
#include "support/determinism.h"

namespace fmbs::core {
namespace {

Scenario one_tag_scenario(double power_dbm, double distance_ft) {
  Scenario sc;
  sc.name = "sweep-point";
  sc.seed = 0;          // derived per grid cell by the seed policy
  sc.station.seed = 0;  // pinned sweep-wide: one shared render
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.duration = units::Seconds{0.1};
  ScenarioTag t;
  t.name = "tag";
  t.rate = tag::DataRate::k1600bps;
  t.num_bits = 64;
  t.tag_power = units::Dbm{power_dbm};
  t.distance_override = units::Feet{distance_ft};
  sc.tags.push_back(std::move(t));
  sc.receivers.push_back(phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

TEST(ScenarioSweep, SeedPolicyDerivesScenarioAndPinsStationSeeds) {
  SweepConfig config{.threads = 1, .base_seed = 55};
  Scenario sc = one_tag_scenario(-30.0, 4.0);
  sc.stations.push_back(ScenarioStation{});
  sc.stations[0].config.seed = 0;  // the "derive me" sentinel
  sc.stations.push_back(ScenarioStation{});
  sc.stations[1].config.seed = 777;  // explicit seed must survive
  apply_scenario_seed_policy(sc, 3, config);
  EXPECT_EQ(sc.seed, derive_seed(55, 3));
  EXPECT_EQ(sc.station.seed, 55U);  // legacy station pinned to base
  EXPECT_NE(sc.stations[0].config.seed, 0U);
  EXPECT_EQ(sc.stations[1].config.seed, 777U);

  // The same point index always derives the same seeds (and distinct scene
  // stations get distinct content).
  Scenario again = one_tag_scenario(-30.0, 4.0);
  again.stations.push_back(ScenarioStation{});
  again.stations[0].config.seed = 0;
  apply_scenario_seed_policy(again, 3, config);
  EXPECT_EQ(again.seed, sc.seed);
  EXPECT_EQ(again.stations[0].config.seed, sc.stations[0].config.seed);
  EXPECT_NE(again.stations[0].config.seed, again.station.seed);

  // Explicit scenario seeds pass through untouched.
  Scenario pinned = one_tag_scenario(-30.0, 4.0);
  pinned.seed = 9;
  apply_scenario_seed_policy(pinned, 3, config);
  EXPECT_EQ(pinned.seed, 9U);

  // Without render sharing, station content follows the per-point seed.
  SweepConfig own{.threads = 1, .base_seed = 55, .share_station_renders = false};
  Scenario unshared = one_tag_scenario(-30.0, 4.0);
  apply_scenario_seed_policy(unshared, 3, own);
  EXPECT_EQ(unshared.station.seed, unshared.seed);
}

// The acceptance property: the same scenario grid is bit-identical at 1, 2
// and 8 threads.
TEST(ScenarioSweep, GridIsBitIdenticalAcrossThreadCounts) {
  const std::vector<double> distances{3.0, 6.0};
  const std::vector<double> powers{-25.0, -40.0};

  test::ExpectBitIdenticalAcrossThreads(
      [&](std::size_t threads) {
        SweepRunner runner(SweepConfig{.threads = threads, .base_seed = 13});
        const ScenarioEngine engine({.keep_captures = false});
        std::vector<ScenarioGridRow> rows;
        for (const double p : powers) {
          rows.push_back({std::to_string(static_cast<int>(p)) + "dBm",
                          [p](double d) { return one_tag_scenario(p, d); },
                          [](const ScenarioResult& r, double) {
                            return r.best_per_tag.empty()
                                       ? -1.0
                                       : r.best_per_tag[0].burst.ber.ber;
                          }});
        }
        return run_scenario_grid(runner, engine, rows, distances);
      },
      [&](const auto& serial, const auto& other, std::size_t threads) {
        ASSERT_EQ(serial.size(), 2U);
        ASSERT_EQ(other.size(), serial.size());
        for (std::size_t r = 0; r < serial.size(); ++r) {
          ASSERT_EQ(serial[r].values.size(), distances.size());
          for (std::size_t i = 0; i < serial[r].values.size(); ++i) {
            EXPECT_GE(serial[r].values[i], 0.0) << "tag went unheard";
            EXPECT_EQ(serial[r].values[i], other[r].values[i])
                << threads << "t," << r << "," << i;
          }
        }
      });
}

// The satellite guarantee for city scenes: a repeated multi-station sweep
// reuses its station renders instead of thrashing the cache — hits at least
// match misses even though every point of every repeat renders 3 stations.
TEST(ScenarioSweep, RepeatedMultiStationSweepHitsAtLeastMisses) {
  auto& cache = fm::StationCache::instance();
  cache.clear();
  cache.reset_stats();

  auto make_scene = [] {
    Scenario sc = one_tag_scenario(-30.0, 4.0);
    for (int s = 0; s < 3; ++s) {
      ScenarioStation st;
      st.name = "st" + std::to_string(s);
      st.offset = units::Hertz{s * 400e3};
      st.power = units::Dbm{-30.0 - s};
      st.config.program.genre = audio::ProgramGenre::kSilence;
      st.config.program.stereo = false;
      st.config.seed = 0;  // pinned sweep-wide by the seed policy
      sc.stations.push_back(std::move(st));
    }
    return sc;
  };

  SweepRunner runner(SweepConfig{.threads = 2, .base_seed = 19});
  const ScenarioEngine engine({.keep_captures = false});
  for (int repeat = 0; repeat < 2; ++repeat) {
    std::vector<Scenario> points;
    for (int i = 0; i < 2; ++i) points.push_back(make_scene());
    const auto results = run_scenario_sweep(runner, engine, std::move(points));
    ASSERT_EQ(results.size(), 2U);
    ASSERT_EQ(results[0].station_renders.size(), 3U);
  }

  const auto stats = cache.stats();
  // 3 distinct stations rendered once each; the other 3 runs hit: 9 vs 3.
  EXPECT_EQ(stats.misses, 3U);
  EXPECT_GE(stats.hits, stats.misses);
  cache.clear();
}

// ---- Segmented (timeline) sweeps --------------------------------------------

/// A two-station scene with a walking carrier-sense tag on a 0.1 s
/// timeline: everything the segmented engine adds (mobility, handoff, MAC
/// deferral) in one sweep point.
Scenario segmented_mobile_scene(double walk_span_m) {
  Scenario sc;
  sc.name = "segmented-point";
  sc.seed = 0;  // derived per point by the seed policy
  sc.duration = units::Seconds{0.4};
  sc.timeline.segment = units::Seconds{0.1};
  for (int s = 0; s < 2; ++s) {
    ScenarioStation st;
    st.name = s == 0 ? "west" : "east";
    st.offset = units::Hertz{s * 800e3};
    st.power = units::Dbm{s == 0 ? -28.0 : -30.0};
    st.position = ScenePosition{s == 0 ? -60.0 : 60.0, 0.0};
    st.config.program.genre = audio::ProgramGenre::kNews;
    st.config.program.stereo = false;
    st.config.seed = 0;  // pinned sweep-wide by the seed policy
    sc.stations.push_back(std::move(st));
  }
  ScenarioTag t;
  t.name = "walker";
  t.rate = tag::DataRate::k1600bps;
  t.num_bits = 96;
  t.position = {-walk_span_m, 0.0};
  t.waypoints = {{walk_span_m, 0.0}};
  t.distance_override = units::Feet{4.0};
  t.mac.kind = tag::MacKind::kCarrierSense;
  sc.tags.push_back(std::move(t));
  sc.receivers.push_back(phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

// The tentpole acceptance property: sweeps over segmented, mobile,
// MAC-resolved scenarios are still bit-identical at 1, 2 and 8 threads.
TEST(ScenarioSweep, SegmentedSweepIsBitIdenticalAcrossThreadCounts) {
  const std::vector<double> spans{10.0, 20.0, 30.0};

  test::ExpectBitIdenticalAcrossThreads(
      [&](std::size_t threads) {
        SweepRunner runner(SweepConfig{.threads = threads, .base_seed = 29});
        const ScenarioEngine engine({.keep_captures = false});
        std::vector<Scenario> points;
        for (const double s : spans) {
          points.push_back(segmented_mobile_scene(s));
        }
        return run_scenario_sweep(runner, engine, std::move(points));
      },
      [&](const auto& serial, const auto& other, std::size_t threads) {
        ASSERT_EQ(serial.size(), spans.size());
        ASSERT_EQ(other.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
          ASSERT_EQ(serial[i].segments.size(), 5U);
          ASSERT_EQ(serial[i].best_per_tag.size(), 1U) << "tag went unheard";
          EXPECT_EQ(serial[i].best_per_tag[0].burst.ber.ber,
                    other[i].best_per_tag[0].burst.ber.ber)
              << threads << "t," << i;
          EXPECT_EQ(serial[i].mac[0].start_seconds,
                    other[i].mac[0].start_seconds)
              << threads << "t," << i;
          for (std::size_t k = 0; k < serial[i].segments.size(); ++k) {
            EXPECT_EQ(serial[i].segments[k].selected_station,
                      other[i].segments[k].selected_station)
                << threads << "t," << i << "," << k;
          }
        }
        // The walk really produces handoffs (the sweep is not testing
        // statics).
        EXPECT_NE(serial[2].segments.front().selected_station,
                  serial[2].segments.back().selected_station);
      });
}

/// A scene where demand-driven rendering genuinely prunes: five stations,
/// but the receiver's neighborhood around the tag's +600 kHz channel covers
/// only station 0 (always rendered), +200 kHz (exactly at the 400 kHz
/// pruning boundary) and +800 kHz — the −800 kHz and −1 MHz stations are
/// never synthesized. Lazy renders then hit fm::StationCache concurrently
/// from the sweep pool, which is exactly the path this thread-identity test
/// (and its TSan lane) must cover.
Scenario pruned_city_scene(double distance_ft) {
  Scenario sc = one_tag_scenario(-30.0, distance_ft);
  sc.name = "pruned-point";
  const double offsets[5] = {0.0, 200e3, -800e3, 800e3, -1000e3};
  for (int s = 0; s < 5; ++s) {
    ScenarioStation st;
    st.name = "st" + std::to_string(s);
    st.offset = units::Hertz{offsets[s]};
    st.power = units::Dbm{-28.0 - s};
    st.config.program.genre = audio::ProgramGenre::kNews;
    st.config.program.stereo = false;
    st.config.seed = 0;  // pinned sweep-wide by the seed policy
    sc.stations.push_back(std::move(st));
  }
  sc.tags[0].station_index = 0;  // pin: selection must not rescue far stations
  return sc;
}

// Demand-driven rendering under the sweep pool: pruning decisions and the
// lazily-rendered scene must be bit-identical at 1, 2 and 8 threads even
// though the lazy renders race through the shared StationCache.
TEST(ScenarioSweep, SparseLazyRenderIsBitIdenticalAcrossThreadCounts) {
  const std::vector<double> distances{3.0, 4.0, 6.0, 8.0};

  test::ExpectBitIdenticalAcrossThreads(
      [&](std::size_t threads) {
        SweepRunner runner(SweepConfig{.threads = threads, .base_seed = 43});
        const ScenarioEngine engine({.keep_captures = false});
        std::vector<Scenario> points;
        for (const double d : distances) {
          points.push_back(pruned_city_scene(d));
        }
        return run_scenario_sweep(runner, engine, std::move(points));
      },
      [&](const auto& serial, const auto& other, std::size_t threads) {
        ASSERT_EQ(serial.size(), distances.size());
        ASSERT_EQ(other.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
          // The pruning decision itself is part of the contract.
          EXPECT_EQ(serial[i].scene.stations_total, 5U);
          EXPECT_EQ(serial[i].scene.stations_rendered, 3U) << i;
          EXPECT_EQ(other[i].scene.stations_rendered,
                    serial[i].scene.stations_rendered)
              << threads << "t," << i;
          ASSERT_EQ(serial[i].best_per_tag.size(), 1U) << "tag went unheard";
          ASSERT_EQ(other[i].best_per_tag.size(), 1U);
          EXPECT_EQ(serial[i].best_per_tag[0].burst.ber.ber,
                    other[i].best_per_tag[0].burst.ber.ber)
              << threads << "t," << i;
          EXPECT_EQ(serial[i].best_per_tag[0].goodput_bps,
                    other[i].best_per_tag[0].goodput_bps)
              << threads << "t," << i;
          EXPECT_EQ(serial[i].selected_station, other[i].selected_station)
              << threads << "t," << i;
        }
      });
}

// Station renders are reused ACROSS segments (one render per station per
// run, never one per segment) and across sweep points: sweeping a 5-segment
// scene must keep the cache hit-rate at or above the miss count.
TEST(ScenarioSweep, MultiSegmentSweepReusesRendersAcrossSegments) {
  auto& cache = fm::StationCache::instance();
  cache.clear();
  cache.reset_stats();

  SweepRunner runner(SweepConfig{.threads = 2, .base_seed = 31});
  const ScenarioEngine engine({.keep_captures = false});
  std::vector<Scenario> points;
  for (int i = 0; i < 4; ++i) points.push_back(segmented_mobile_scene(15.0));
  const auto results = run_scenario_sweep(runner, engine, std::move(points));
  ASSERT_EQ(results.size(), 4U);
  ASSERT_EQ(results[0].segments.size(), 5U);

  const auto stats = cache.stats();
  // 2 stations x 4 points x 5 segments of use, but only 2 renders: one miss
  // per distinct station, hits for every other (point, station) lookup.
  EXPECT_EQ(stats.misses, 2U);
  EXPECT_EQ(stats.hits, 6U);
  EXPECT_GE(stats.hits, stats.misses);
  cache.clear();
}

}  // namespace
}  // namespace fmbs::core
