// End-of-run partial-burst accounting: a burst whose *requested* start fits
// the run but whose MAC-quantized start pushes it past the run boundary
// would be truncated on the air. Both engines must treat it as never sent —
// excluded from the scene and from goodput — rather than throwing (the old
// behaviour) or silently scoring a truncated airtime. A burst that could
// never fit at its requested start is still a configuration error.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/streaming.h"
#include "tag/fsk.h"

namespace fmbs::core {
namespace {

// 64 bits at 1600 bps = 40 ms on the air.
Scenario partial_burst_scene(double tag_start_seconds,
                             tag::MacKind mac = tag::MacKind::kSlottedAloha) {
  Scenario sc;
  sc.name = "partial_burst";
  sc.duration = units::Seconds{0.5};  // plus 0.08 s settle: 0.58 s total
  sc.station.program.stereo = false;
  ScenarioTag tag;
  tag.name = "late";
  tag.num_bits = 64;
  tag.tag_power = units::Dbm{-25.0};
  tag.distance_override = units::Feet{4.0};
  tag.start = units::Seconds{tag_start_seconds};
  tag.mac.kind = mac;
  tag.mac.slot = units::Seconds{0.2};
  sc.tags.push_back(tag);
  sc.receivers.push_back(phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

TEST(ScenarioPartialBurst, MacPushedPastEndIsNeverSentNotAnError) {
  // Nominal start 0.49 s + 40 ms fits the 0.58 s run; slot quantization
  // (pitch 0.2 s) rounds the start up to 0.6 s, past the boundary.
  const Scenario sc = partial_burst_scene(0.41);
  const ScenarioPlan plan = resolve_scenario_plan(sc);  // must not throw
  ASSERT_EQ(plan.tags.size(), 1U);
  EXPECT_FALSE(plan.tags[0].transmitted);

  const ScenarioResult result = ScenarioEngine(ScenarioEngineConfig{}).run(sc);
  ASSERT_EQ(result.mac.size(), 1U);
  EXPECT_FALSE(result.mac[0].transmitted);
  // Never sent: no scored link, no goodput, nothing rendered for the tag.
  EXPECT_TRUE(result.best_per_tag.empty());
  EXPECT_EQ(result.aggregate_goodput_bps, 0.0);
  ASSERT_EQ(result.receivers.size(), 1U);
  EXPECT_TRUE(result.receivers[0].links.empty());
  EXPECT_EQ(result.scene.tags_rendered, 0U);
}

TEST(ScenarioPartialBurst, SameNominalStartTransmitsUnderPureAloha) {
  // The identical request under pure ALOHA keeps its nominal start and fits:
  // proof the exclusion above is the MAC's doing, not the request's.
  const Scenario sc =
      partial_burst_scene(0.41, tag::MacKind::kPureAloha);
  const ScenarioResult result = ScenarioEngine(ScenarioEngineConfig{}).run(sc);
  ASSERT_EQ(result.mac.size(), 1U);
  EXPECT_TRUE(result.mac[0].transmitted);
  // The burst went on the air and was scored over its full payload — every
  // bit of the 64 was on the air before the run ended.
  ASSERT_EQ(result.best_per_tag.size(), 1U);
  EXPECT_EQ(result.best_per_tag[0].burst.ber.bits_compared, 64U);
  EXPECT_GT(result.best_per_tag[0].burst.packets, 0U);
  EXPECT_EQ(result.scene.tags_rendered, 1U);
}

TEST(ScenarioPartialBurst, NominallyUnfittableBurstStillThrows) {
  // Requested start 0.56 s + 40 ms overruns 0.58 s at the *nominal* time:
  // a configuration error regardless of MAC policy.
  const Scenario sc = partial_burst_scene(0.56, tag::MacKind::kPureAloha);
  EXPECT_THROW(resolve_scenario_plan(sc), std::invalid_argument);
}

TEST(ScenarioPartialBurst, BatchAndStreamingAgree) {
  const Scenario sc = partial_burst_scene(0.41);
  const ScenarioResult batch = ScenarioEngine(ScenarioEngineConfig{}).run(sc);
  const ScenarioResult stream = StreamingEngine(StreamingConfig{}).run(sc);
  ASSERT_EQ(stream.mac.size(), 1U);
  EXPECT_EQ(stream.mac[0].transmitted, batch.mac[0].transmitted);
  EXPECT_EQ(stream.aggregate_goodput_bps, batch.aggregate_goodput_bps);
  EXPECT_EQ(stream.best_per_tag.size(), batch.best_per_tag.size());
  ASSERT_EQ(stream.receivers.size(), batch.receivers.size());
  EXPECT_EQ(stream.receivers[0].links.size(), batch.receivers[0].links.size());
}

}  // namespace
}  // namespace fmbs::core
