// PHY-vs-analytic ALOHA cross-check: the paper's section-8 MAC claim has so
// far been modeled only analytically (core/aloha.h Monte-Carlo). Here the
// same offered load is run through the signal-level ScenarioEngine — every
// attempt is a real burst, and collisions happen in the MPX spectrum — and
// the two models must agree:
//  * per attempt, the PHY outcome matches the ALOHA vulnerability rule
//    (overlap => lost, clear => delivered) except for sub-symbol grazes,
//  * aggregate success probability sits within Monte-Carlo tolerance of the
//    closed forms S = G e^{-2G} (pure) / G e^{-G} (slotted) and of
//    core::simulate_aloha at the same load.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "core/aloha.h"
#include "core/scenario.h"
#include "tag/mac.h"

namespace fmbs::core {
namespace {

// One attempt = 96 bits at 1.6 kbps = 60 ms on the air.
constexpr std::size_t kBitsPerFrame = 96;
constexpr double kFrameSeconds = 0.06;
/// The engine keeps the switch on kBurstGuardSeconds around the burst;
/// that carrier time interferes like payload time does.
constexpr double kGuardSeconds = kBurstGuardSeconds;
/// One FDM-4FSK symbol at 1.6 kbps; overlaps shorter than this may or may
/// not flip a bit, so such grazes are excluded from the exact comparison.
constexpr double kSymbolSeconds = 1.0 / 200.0;

struct PhyAloha {
  std::size_t attempts = 0;
  std::size_t successes = 0;
  std::size_t marginal = 0;   // grazing overlaps excluded from exact check
  double offered_load = 0.0;  // G: attempts per frame-time
  double success_probability = 0.0;
};

PhyAloha run_phy_aloha(bool slotted, double window_seconds,
                       std::size_t num_attempts, std::uint64_t seed) {
  // Attempt schedule. Poisson arrivals conditioned on their count are
  // uniform, so uniform starts reproduce the analytic model's statistics.
  std::mt19937_64 rng(seed);
  std::vector<double> starts(num_attempts);
  if (slotted) {
    const double pitch = kFrameSeconds + 2.0 * kGuardSeconds + 0.005;
    const auto slots =
        static_cast<std::size_t>((window_seconds - kFrameSeconds) / pitch);
    std::uniform_int_distribution<std::size_t> slot(0, slots - 1);
    for (auto& s : starts) s = static_cast<double>(slot(rng)) * pitch;
  } else {
    std::uniform_real_distribution<double> at(0.0,
                                              window_seconds - kFrameSeconds);
    for (auto& s : starts) s = at(rng);
  }

  // The shared-channel scenario: silence program isolates tag-vs-tag
  // interference (the paper's Fig. 6 methodology), one phone listening.
  Scenario sc;
  sc.name = slotted ? "aloha-slotted" : "aloha-pure";
  sc.station.program.genre = audio::ProgramGenre::kSilence;
  sc.station.program.stereo = false;
  sc.station.seed = seed;
  sc.seed = seed;
  sc.duration = units::Seconds{window_seconds};
  for (std::size_t i = 0; i < num_attempts; ++i) {
    ScenarioTag t;
    t.name = "attempt" + std::to_string(i);
    t.rate = tag::DataRate::k1600bps;
    t.num_bits = kBitsPerFrame;
    t.tag_power = units::Dbm{-25.0};
    t.distance_override = units::Feet{3.0};
    t.start = units::Seconds{starts[i]};
    sc.tags.push_back(std::move(t));
  }
  sc.receivers.push_back(
      phone_listening_to(sc.tags.empty() ? tag::SubcarrierConfig{}
                                         : sc.tags[0].subcarrier));

  const ScenarioResult result = ScenarioEngine({.keep_captures = false}).run(sc);
  EXPECT_EQ(result.best_per_tag.size(), num_attempts);

  // The analytic vulnerability rule, shared with the fleet engine's
  // contention classifier (tag::classify_vulnerability): the worst verdict
  // against any neighbor decides the burst.
  auto verdict_of = [&](std::size_t i) {
    const tag::BurstWindow mine{units::Seconds{starts[i]}, units::Seconds{kFrameSeconds},
                                units::Seconds{kGuardSeconds}};
    tag::Vulnerability worst = tag::Vulnerability::kClear;
    for (std::size_t j = 0; j < starts.size(); ++j) {
      if (j == i) continue;
      const tag::BurstWindow other{units::Seconds{starts[j]}, units::Seconds{kFrameSeconds},
                                   units::Seconds{kGuardSeconds}};
      worst = std::max(
          worst, tag::classify_vulnerability(mine, other, units::Seconds{kSymbolSeconds}));
    }
    return worst;
  };

  PhyAloha out;
  out.attempts = num_attempts;
  for (const TagLinkReport& link : result.best_per_tag) {
    const bool delivered = link.burst.packets_ok == link.burst.packets;
    if (delivered) ++out.successes;
    const tag::Vulnerability v = verdict_of(link.tag_index);
    if (v == tag::Vulnerability::kGraze) {
      ++out.marginal;  // grazing: either outcome is physical
      continue;
    }
    EXPECT_EQ(delivered, v == tag::Vulnerability::kClear)
        << "attempt " << link.tag_index << " start "
        << sc.tags[link.tag_index].start.raw() << " verdict "
        << tag::to_string(v)
        << ": PHY disagrees with the ALOHA vulnerability rule";
  }
  const double frames = window_seconds / kFrameSeconds;
  out.offered_load = static_cast<double>(num_attempts) / frames;
  out.success_probability =
      static_cast<double>(out.successes) / static_cast<double>(num_attempts);
  return out;
}

/// 3-sigma binomial Monte-Carlo band around p for n samples, plus the
/// marginal attempts whose outcome is legitimately either way.
double tolerance(double p, std::size_t n, std::size_t marginal) {
  return 3.0 * std::sqrt(p * (1.0 - p) / static_cast<double>(n)) +
         static_cast<double>(marginal) / static_cast<double>(n);
}

TEST(ScenarioAloha, PureAlohaLowLoadMatchesAnalytic) {
  const PhyAloha phy = run_phy_aloha(false, 1.8, 6, 2024);
  // G = 0.2: success prob e^{-2G} = 0.67.
  const double p = std::exp(-2.0 * phy.offered_load);
  EXPECT_NEAR(phy.success_probability, p,
              tolerance(p, phy.attempts, phy.marginal));
}

TEST(ScenarioAloha, PureAlohaMediumLoadMatchesAnalyticAndMonteCarlo) {
  const PhyAloha phy = run_phy_aloha(false, 1.8, 15, 77);
  const double p = std::exp(-2.0 * phy.offered_load);
  EXPECT_NEAR(phy.success_probability, p,
              tolerance(p, phy.attempts, phy.marginal));

  // Converged core::aloha Monte-Carlo at the same offered load: the two
  // simulations of one MAC must tell the same story.
  AlohaConfig mc;
  mc.num_tags = 15;
  mc.frame = units::Seconds{kFrameSeconds};
  mc.duration = units::Seconds{3600.0};
  mc.per_tag_rate = units::Hertz{phy.offered_load / (mc.frame.raw() *
                                           static_cast<double>(mc.num_tags))};
  const AlohaResult ref = simulate_aloha(mc);
  EXPECT_NEAR(phy.success_probability, ref.success_probability,
              tolerance(ref.success_probability, phy.attempts, phy.marginal));
}

TEST(ScenarioAloha, SlottedAlohaMatchesAnalytic) {
  const PhyAloha phy = run_phy_aloha(true, 1.7, 10, 9);
  // Slotted collisions are total overlaps: no marginal attempts at all.
  EXPECT_EQ(phy.marginal, 0U);
  const double p = std::exp(-phy.offered_load);
  // Slot pitch exceeds the frame time, so the effective per-slot load is
  // G_slot = attempts / num_slots; compare in slot units.
  const double pitch = kFrameSeconds + 2.0 * kGuardSeconds + 0.005;
  const auto slots = static_cast<std::size_t>((1.7 - kFrameSeconds) / pitch);
  const double g_slot =
      static_cast<double>(phy.attempts) / static_cast<double>(slots);
  const double p_slot = std::exp(-g_slot);
  (void)p;
  EXPECT_NEAR(phy.success_probability, p_slot,
              tolerance(p_slot, phy.attempts, 0));
}

}  // namespace
}  // namespace fmbs::core
