// O(1)-memory soak property (slow lane): the streaming engine's bounded
// buffering must not grow with the run duration. A 120 s simulated run's
// streaming_peak_buffer_bytes must land within 1.1x of a 5 s run's — the
// whole point of the pipeline is that nothing scales with simulated time
// once the run outgrows the station horizon and decision windows.
#include <gtest/gtest.h>

#include <cstddef>

#include "core/streaming.h"

namespace fmbs::core {
namespace {

// Minimal city-like scene that still exercises every bounded buffer class:
// one station with RDS (station RDS decision window), one mono receiver, one
// FSK tag (burst collector).
Scenario soak_scene(double duration_seconds) {
  Scenario sc;
  sc.name = "soak";
  sc.duration = units::Seconds{duration_seconds};
  sc.station.program.stereo = false;
  sc.station.rds_level = 0.04;
  sc.station.rds_ps_name = "SOAKTEST";
  ScenarioTag tag;
  tag.name = "poster";
  tag.num_bits = 96;
  sc.tags.push_back(tag);
  ScenarioReceiver rx;
  rx.name = "car";
  rx.kind = ReceiverKind::kCar;
  rx.stereo_decoder.force_mono = true;
  sc.receivers.push_back(rx);
  return sc;
}

TEST(StreamingMemory, PeakBufferBytesAreDurationInvariant) {
  const ScenarioResult short_run =
      StreamingEngine(StreamingConfig{}).run(soak_scene(5.0));
  const ScenarioResult long_run =
      StreamingEngine(StreamingConfig{}).run(soak_scene(120.0));
  ASSERT_GT(short_run.scene.streaming_peak_buffer_bytes, 0U);
  ASSERT_GT(long_run.scene.streaming_peak_buffer_bytes, 0U);
  // The 24x longer run may cost at most 10% more bounded buffering.
  EXPECT_LE(static_cast<double>(long_run.scene.streaming_peak_buffer_bytes),
            1.1 * static_cast<double>(
                      short_run.scene.streaming_peak_buffer_bytes))
      << "5 s run: " << short_run.scene.streaming_peak_buffer_bytes
      << " bytes, 120 s run: " << long_run.scene.streaming_peak_buffer_bytes
      << " bytes";
  // And the long run still decodes: the tag's burst link exists.
  ASSERT_FALSE(long_run.receivers.empty());
  EXPECT_FALSE(long_run.receivers[0].links.empty());
}

TEST(StreamingMemory, BufferScalesWithRingNotDuration) {
  // Doubling the ring should show up in the ledger; doubling the duration
  // should not. This pins the ledger to the knobs that actually allocate.
  const Scenario sc = soak_scene(10.0);
  StreamingConfig small_ring;
  small_ring.ring_blocks = 4;
  StreamingConfig big_ring;
  big_ring.ring_blocks = 64;
  const auto small_bytes =
      StreamingEngine(small_ring).run(sc).scene.streaming_peak_buffer_bytes;
  const auto big_bytes =
      StreamingEngine(big_ring).run(sc).scene.streaming_peak_buffer_bytes;
  EXPECT_GT(big_bytes, small_bytes);
}

}  // namespace
}  // namespace fmbs::core
