#include "core/simulator.h"

#include <gtest/gtest.h>

#include "audio/tone.h"
#include "dsp/math_util.h"
#include "dsp/spectrum.h"
#include "tag/baseband.h"

namespace fmbs::core {
namespace {

SystemConfig quiet_system() {
  SystemConfig cfg;
  cfg.station.program.genre = audio::ProgramGenre::kSilence;
  cfg.station.program.stereo = false;
  cfg.scene.tag_power = units::Dbm{-20.0};
  cfg.scene.tag_rx_distance = units::Feet{4.0};
  return cfg;
}

dsp::rvec tone_baseband(double freq, double seconds) {
  return tag::compose_overlay_baseband(
      audio::make_tone(freq, 1.0, seconds, fm::kAudioRate), 0.95);
}

TEST(Simulator, OutputLengthsConsistent) {
  const SystemConfig cfg = quiet_system();
  const SimulationResult sim = simulate(cfg, tone_baseband(1000.0, 0.5), units::Seconds{0.5});
  EXPECT_NEAR(sim.backscatter_rx.mono.duration_seconds(), 0.5, 0.05);
  EXPECT_EQ(sim.backscatter_rx.mono.sample_rate, fm::kAudioRate);
  EXPECT_FALSE(sim.ambient_rx.has_value());
  EXPECT_EQ(sim.station->program.sample_rate, fm::kAudioRate);
}

TEST(Simulator, AmbientCaptureOptional) {
  SystemConfig cfg = quiet_system();
  cfg.capture_ambient_receiver = true;
  const SimulationResult sim = simulate(cfg, tone_baseband(1000.0, 0.4), units::Seconds{0.4});
  ASSERT_TRUE(sim.ambient_rx.has_value());
  EXPECT_EQ(sim.ambient_rx->mono.size(), sim.backscatter_rx.mono.size());
}

TEST(Simulator, BackscatterPowerTracksBudget) {
  SystemConfig cfg = quiet_system();
  const SimulationResult near = simulate(cfg, tone_baseband(1000.0, 0.3), units::Seconds{0.3});
  cfg.scene.tag_rx_distance = units::Feet{16.0};
  const SimulationResult far = simulate(cfg, tone_baseband(1000.0, 0.3), units::Seconds{0.3});
  // 4x the distance: 12 dB weaker backscatter at the receiver.
  EXPECT_NEAR(near.backscatter_rx_power_dbm - far.backscatter_rx_power_dbm,
              12.0, 0.5);
}

TEST(Simulator, ToneSnrDropsWithDistance) {
  SystemConfig cfg = quiet_system();
  cfg.scene.tag_power = units::Dbm{-50.0};
  const SimulationResult near = simulate(cfg, tone_baseband(1000.0, 0.6), units::Seconds{0.6});
  cfg.scene.tag_rx_distance = units::Feet{20.0};
  const SimulationResult far = simulate(cfg, tone_baseband(1000.0, 0.6), units::Seconds{0.6});
  const double snr_near = dsp::tone_snr_db(near.backscatter_rx.mono.samples,
                                           fm::kAudioRate, 1000.0, 100.0, 15000.0);
  const double snr_far = dsp::tone_snr_db(far.backscatter_rx.mono.samples,
                                          fm::kAudioRate, 1000.0, 100.0, 15000.0);
  EXPECT_GT(snr_near, snr_far + 5.0);
}

TEST(Simulator, DeterministicPerSeeds) {
  const SystemConfig cfg = quiet_system();
  const SimulationResult a = simulate(cfg, tone_baseband(2000.0, 0.3), units::Seconds{0.3});
  const SimulationResult b = simulate(cfg, tone_baseband(2000.0, 0.3), units::Seconds{0.3});
  ASSERT_EQ(a.backscatter_rx.mono.size(), b.backscatter_rx.mono.size());
  for (std::size_t i = 0; i < a.backscatter_rx.mono.size(); i += 479) {
    EXPECT_EQ(a.backscatter_rx.mono.samples[i], b.backscatter_rx.mono.samples[i]);
  }
}

TEST(Simulator, NoiseSeedChangesRealization) {
  SystemConfig cfg = quiet_system();
  cfg.scene.tag_power = units::Dbm{-60.0};  // noise-visible regime
  const SimulationResult a = simulate(cfg, tone_baseband(2000.0, 0.2), units::Seconds{0.2});
  cfg.scene.noise_seed = 777;
  const SimulationResult b = simulate(cfg, tone_baseband(2000.0, 0.2), units::Seconds{0.2});
  bool any_diff = false;
  for (std::size_t i = 0; i < a.backscatter_rx.mono.size(); ++i) {
    if (a.backscatter_rx.mono.samples[i] != b.backscatter_rx.mono.samples[i]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Simulator, EmptyTagBasebandYieldsNoTone) {
  const SystemConfig cfg = quiet_system();
  const SimulationResult sim = simulate(cfg, {}, units::Seconds{0.3});
  // Unmodulated subcarrier only: no audio tone in the output.
  const double p = dsp::band_power(sim.backscatter_rx.mono.samples,
                                   fm::kAudioRate, 500.0, 12000.0);
  EXPECT_LT(p, 1e-4);
}

TEST(Simulator, CarReceiverAppliesCabin) {
  SystemConfig cfg = quiet_system();
  cfg.receiver = ReceiverKind::kCar;
  cfg.scene.rx_noise_200khz = channel::ReceiverNoise::kCarPer200kHz;
  const SimulationResult sim = simulate(cfg, tone_baseband(1000.0, 0.5), units::Seconds{0.5});
  // Engine rumble present below 200 Hz.
  const double p_rumble = dsp::band_power(sim.backscatter_rx.mono.samples,
                                          fm::kAudioRate, 25.0, 200.0);
  EXPECT_GT(p_rumble, 1e-8);
  // Tone still present.
  const double p_tone = dsp::band_power(sim.backscatter_rx.mono.samples,
                                        fm::kAudioRate, 900.0, 1100.0);
  EXPECT_GT(p_tone, 1e-3);
}

TEST(Simulator, FadingReducesMeanSnr) {
  SystemConfig cfg = quiet_system();
  cfg.scene.tag_power = units::Dbm{-55.0};
  cfg.scene.tag_rx_distance = units::Feet{8.0};
  const SimulationResult still = simulate(cfg, tone_baseband(1000.0, 0.8), units::Seconds{0.8});
  cfg.scene.fading = channel::fading_for_mobility(channel::Mobility::kRunning);
  const SimulationResult moving = simulate(cfg, tone_baseband(1000.0, 0.8), units::Seconds{0.8});
  const double snr_still = dsp::tone_snr_db(still.backscatter_rx.mono.samples,
                                            fm::kAudioRate, 1000.0, 100.0, 15000.0);
  const double snr_moving = dsp::tone_snr_db(moving.backscatter_rx.mono.samples,
                                             fm::kAudioRate, 1000.0, 100.0, 15000.0);
  EXPECT_LT(snr_moving, snr_still + 1.0);
}

TEST(Simulator, Validation) {
  const SystemConfig cfg = quiet_system();
  EXPECT_THROW(simulate(cfg, {}, units::Seconds{0.0}), std::invalid_argument);
  EXPECT_THROW(simulate(cfg, {}, units::Seconds{-1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::core
