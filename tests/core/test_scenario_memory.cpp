// Peak-allocation regression for the scenario engine's scene staging.
//
// The pre-sparse engine materialized, for EVERY station in the scene, a full
// copy of its rendered IQ padded up to a whole number of streaming blocks
// (copy-then-pad), then kept a full upsampled RF block per station — so a
// six-station scene paid ~2x the render memory again in copies before the
// first receiver ever decoded, and scenes paid for stations no receiver
// could hear. Demand-driven rendering replaced the copies with ONE shared
// block-sized scratch (used only for the final partial block) and skips
// unneeded stations entirely. This test instruments global operator new and
// pins the peak: if copy-then-pad (or render-everything) comes back, the
// peak jumps by megabytes and the bound here fails.
//
// The binary-local allocator override counts every live byte via
// malloc_usable_size; this file is its own test executable, so the override
// cannot leak into other tests.
#include <gtest/gtest.h>
#include <malloc.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include "core/scenario.h"
#include "dsp/types.h"
#include "fm/constants.h"

namespace {

std::atomic<std::size_t> g_live{0};
std::atomic<std::size_t> g_peak{0};

void track_alloc(void* p) {
  if (p == nullptr) return;
  const std::size_t live =
      g_live.fetch_add(malloc_usable_size(p)) + malloc_usable_size(p);
  std::size_t peak = g_peak.load();
  while (live > peak && !g_peak.compare_exchange_weak(peak, live)) {
  }
}

void track_free(void* p) {
  if (p == nullptr) return;
  g_live.fetch_sub(malloc_usable_size(p));
}

}  // namespace

// GCC 12 flags free() inside a user-defined operator delete as a mismatched
// pair even though this file's operator new is malloc-backed by construction.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  track_alloc(p);
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept {
  track_free(p);
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace fmbs::core {
namespace {

/// Six far-field stations spread across the scene, one tag on the center
/// station, one phone on the tag's channel: only the center station (and the
/// one 200 kHz over) are inside the receiver's neighborhood.
Scenario six_station_scene() {
  Scenario sc;
  sc.name = "memory_probe";
  sc.seed = 11;
  sc.duration = units::Seconds{0.2};  // 0.28 s total: NOT a whole number of blocks
  const double offsets[6] = {0.0, 200e3, -600e3, 600e3, -1000e3, 1000e3};
  for (int s = 0; s < 6; ++s) {
    ScenarioStation st;
    st.name = "st" + std::to_string(s);
    st.config.program.genre = audio::ProgramGenre::kNews;
    st.config.program.stereo = false;
    st.config.seed = 100 + static_cast<std::uint64_t>(s);
    st.offset = units::Hertz{offsets[s]};
    st.power = units::Dbm{-28.0 - s};
    sc.stations.push_back(st);
  }
  ScenarioTag t;
  t.name = "poster";
  t.station_index = 0;
  t.subcarrier.shift = units::Hertz{100e3};  // tune at +100 kHz: only 0 / 200 kHz near
  t.rate = tag::DataRate::k1600bps;
  t.num_bits = 128;
  t.packet_bits = 64;
  t.distance_override = units::Feet{4.0};
  sc.tags.push_back(t);
  sc.receivers.push_back(phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

TEST(ScenarioMemory, SparseRunPeakStaysBounded) {
  const Scenario sc = six_station_scene();
  const ScenarioEngine sparse_engine({.keep_captures = false});
  const ScenarioEngine dense_engine(
      {.keep_captures = false, .scene_rendering = SceneRendering::kDense});

  // Warm fm::StationCache (all six renders) so the measured runs pay engine
  // staging only, not first-render synthesis.
  const ScenarioResult warm = sparse_engine.run(sc);
  ASSERT_EQ(warm.scene.stations_total, 6U);
  EXPECT_EQ(warm.scene.stations_rendered, 2U)
      << "only the center station and its 200 kHz neighbor are in range";
  EXPECT_EQ(warm.scene.tags_rendered, 1U);
  dense_engine.run(sc);

  const auto measure_peak = [&](const ScenarioEngine& engine) {
    const std::size_t baseline = g_live.load();
    g_peak.store(baseline);
    const ScenarioResult result = engine.run(sc);
    // Keep `result` alive through the read so both modes count their
    // retained result the same way.
    const std::size_t peak = g_peak.load() - baseline;
    EXPECT_GE(result.scene.stations_rendered, 1U);
    return peak;
  };
  const std::size_t sparse_peak = measure_peak(sparse_engine);
  const std::size_t dense_peak = measure_peak(dense_engine);

  // Scale reference: one station render of this scene (0.28 s at the MPX
  // rate) is ~540 KB of IQ, and one upsampled RF block is ~1.9 MB. Measured
  // peaks today: ~16.9 MB sparse (two staged stations) vs ~24 MB dense (all
  // six) — and the removed copy-then-pad staging alone would add another
  // ~3.3 MB of padded IQ copies on top of dense. The absolute bound sits
  // just above the sparse measurement: either regression (padded copies, or
  // rendering/staging stations nobody can hear) blows through it.
  EXPECT_LT(sparse_peak, 19U << 20)
      << "scene staging regressed toward copy-then-pad / render-everything";
  // Demand-driven staging must actually be cheaper than exhaustive staging
  // by about the four skipped stations' RF blocks.
  EXPECT_LT(sparse_peak + (4U << 20), dense_peak)
      << "sparse " << sparse_peak << " vs dense " << dense_peak;

  // The shared scratch replaces the per-station pads: exactly one streaming
  // block (0.1 s of MPX-rate IQ) when the render length is partial-block.
  const ScenarioResult result = sparse_engine.run(sc);
  const auto block = static_cast<std::size_t>(fm::kMpxRate / 10.0);
  EXPECT_EQ(result.scene.scene_scratch_bytes, block * sizeof(dsp::cfloat));
}

TEST(ScenarioMemory, WholeBlockRunNeedsNoScratch) {
  Scenario sc = six_station_scene();
  sc.duration = units::Seconds{0.22};  // 0.3 s total = exactly 3 streaming blocks
  const ScenarioResult result =
      ScenarioEngine({.keep_captures = false}).run(sc);
  EXPECT_EQ(result.scene.scene_scratch_bytes, 0U);
}

}  // namespace
}  // namespace fmbs::core
