// The strong-type layer's contract, proven twice over:
//  * at compile time — the dimensional identities the link budget leans on
//    are static_asserts, so a regression in units.h refuses to build;
//  * at run time — the migrated channel API reproduces the exact values the
//    raw-double implementation produced before the migration (pinned below),
//    so the types are provably zero-cost in the only sense that matters.
#include "core/units.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <optional>
#include <type_traits>

#include "channel/link_budget.h"
#include "fm/constants.h"
#include "tag/fsk.h"

namespace fmbs {
namespace {

using namespace fmbs::units::literals;

// ---- Compile-time identities ------------------------------------------------

// dBm <-> watts round-trips exactly at the milliwatt reference, and the
// non-positive-power clamp matches the historical dsp floor.
static_assert((0.0_dbm).to_watts() == units::Watts{1e-3});
static_assert(units::Watts{1e-3}.to_dbm() == 0.0_dbm);
static_assert((10.0_dbm).to_watts() == units::Watts{1e-2});
static_assert(units::Watts{0.0}.to_dbm().raw() == units::kFloorDb);

// Log-domain composition is link-budget arithmetic: applying a gain to a
// level yields a level; differencing two levels yields a gain.
static_assert(-30.0_dbm + units::Db{10.0} == -20.0_dbm);
static_assert(-30.0_dbm - units::Db{3.0} == -33.0_dbm);
static_assert((-20.0_dbm) - (-30.0_dbm) == 10.0_db);
static_assert(std::is_same_v<decltype(units::Dbm{} + units::Db{}), units::Dbm>);
static_assert(std::is_same_v<decltype(units::Dbm{} - units::Dbm{}), units::Db>);

// Feet <-> meters is an exact inverse pair through the single 0.3048.
static_assert((1.0_ft).to_meters() == units::Meters{units::kMetersPerFoot});
static_assert((4.0_ft).to_meters().to_feet() == 4.0_ft);
static_assert((0.3048_m).to_feet().raw() == 1.0);

// Wavelength carries the one speed-of-light constant.
static_assert((100.0_mhz).wavelength() == units::Meters{299792458.0 / 100e6});

// Seconds * SampleRate -> whole samples, round-to-nearest ties-away — the
// same convention fsk_burst_seconds uses for whole-symbol rounding (checked
// against the real function in the runtime section below).
static_assert(0.1_s * units::SampleRate{240000.0} == units::SampleCount{24000});
static_assert(units::Seconds{2.5} * units::SampleRate{1.0} ==
              units::SampleCount{3});
static_assert(units::Seconds{-2.5} * units::SampleRate{1.0} ==
              units::SampleCount{-3});
static_assert(units::SampleCount{24000}.at(units::SampleRate{240000.0}) ==
              0.1_s);

// UDL scaling is exact.
static_assert(100.5_mhz == units::Hertz{100.5e6});
static_assert(600.0_khz == units::Hertz{600e3});
static_assert(2.0_mw == units::Watts{2e-3});
static_assert(10.0_ms == units::Seconds{0.01});

// ---- Runtime: migrated link budget vs pre-migration pins --------------------

// Values produced by the raw-double implementation at the paper's phone
// operating point (-30 dBm at the tag, direct = tag power, 4 ft range)
// immediately before the strong-type migration. The migrated API must
// reproduce them bit-for-bit: EXPECT_EQ, no tolerance.
TEST(UnitsMigration, LinkBudgetMatchesPreMigrationPins) {
  const channel::LinkBudget b = channel::compute_link_budget(
      -30.0_dbm, -30.0_dbm, units::Feet{4.0}.to_meters());
  EXPECT_EQ(b.backscatter_amplitude, 0.00011881182297421541);
  EXPECT_EQ(b.backscatter_gain.raw(), -18.502806810500864);
  EXPECT_EQ(b.direct_amplitude, 0.001);
}

TEST(UnitsMigration, BackscatterPathMatchesPreMigrationPins) {
  const channel::BackscatterPath p = channel::compute_backscatter_path(
      -30.0_dbm, -30.0_dbm, units::Feet{4.0}.to_meters());
  EXPECT_EQ(p.sideband.raw(), 5.7211003419339568e-09);
  EXPECT_EQ(p.sideband_power.raw(), -52.425204351103915);
}

// The Seconds * SampleRate rounding rule is the same whole-symbol rounding
// fsk_burst_seconds performs: burst duration times the rate is a whole
// number of samples, and re-deriving it through the typed path agrees.
TEST(UnitsMigration, SampleRuleMatchesFskBurstRounding) {
  for (const auto rate : {tag::DataRate::k100bps, tag::DataRate::k1600bps,
                          tag::DataRate::k3200bps}) {
    for (const std::size_t bits : {1U, 7U, 96U, 1000U}) {
      const units::Seconds burst{
          tag::fsk_burst_seconds(bits, rate, fm::kMpxRate)};
      const units::SampleCount n = burst * units::SampleRate{fm::kMpxRate};
      // A whole-symbol burst is a whole number of samples: converting back
      // reproduces the duration exactly (kMpxRate divides cleanly).
      EXPECT_EQ(n.at(units::SampleRate{fm::kMpxRate}).raw(), burst.raw())
          << "rate=" << static_cast<int>(rate) << " bits=" << bits;
    }
  }
}

// Watts round-trip at an arbitrary (non-reference) level is tight but not
// exact — one pow/log10 pair — and the historical dsp floor caps the bottom.
TEST(Units, DbmWattsRoundTrip) {
  const units::Dbm p = -52.425204351103915_dbm;
  EXPECT_NEAR(p.to_watts().to_dbm().raw(), p.raw(), 1e-12);
  EXPECT_EQ(units::Watts{-1.0}.to_dbm().raw(), units::kFloorDb);
}

TEST(Units, DbLinearHelpers) {
  EXPECT_NEAR(units::Db{3.0103}.power_ratio(), 2.0, 1e-4);
  EXPECT_NEAR(units::Db{6.0206}.amplitude_ratio(), 2.0, 1e-4);
  EXPECT_NEAR(units::Db::from_power_ratio(2.0).raw(), 3.0103, 1e-4);
  EXPECT_EQ(units::Db::from_power_ratio(0.0).raw(), units::kFloorDb);
  EXPECT_EQ(units::Db::from_amplitude_ratio(-1.0).raw(), units::kFloorDb);
}

// -inf dBm is a legitimate value (a silent channel) and composes sanely.
TEST(Units, SilentChannelSentinel) {
  const units::Dbm silent{-std::numeric_limits<double>::infinity()};
  EXPECT_EQ(silent.to_watts().raw(), 0.0);
  EXPECT_LT(silent, -300.0_dbm);
  EXPECT_EQ((silent + units::Db{40.0}).raw(),
            -std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace fmbs
