#include <gtest/gtest.h>

#include "core/aloha.h"
#include "core/harvesting.h"

namespace fmbs::core {
namespace {

TEST(Aloha, LowLoadNearlyAlwaysSucceeds) {
  AlohaConfig cfg;
  cfg.num_tags = 2;
  cfg.per_tag_rate = units::Hertz{0.01};
  cfg.frame = units::Seconds{0.5};
  cfg.duration = units::Seconds{20000.0};
  const AlohaResult r = simulate_aloha(cfg);
  EXPECT_GT(r.success_probability, 0.97);
}

TEST(Aloha, MatchesPureAlohaTheory) {
  AlohaConfig cfg;
  cfg.num_tags = 20;
  cfg.frame = units::Seconds{0.5};
  cfg.per_tag_rate = units::Hertz{0.05};  // G = 20*0.05*0.5 = 0.5
  cfg.duration = units::Seconds{40000.0};
  const AlohaResult r = simulate_aloha(cfg);
  const double expected = aloha_theoretical_throughput(r.offered_load, false);
  EXPECT_NEAR(r.throughput, expected, 0.05);
}

TEST(Aloha, SlottedDoublesPeakThroughput) {
  AlohaConfig cfg;
  cfg.num_tags = 40;
  cfg.frame = units::Seconds{0.5};
  cfg.per_tag_rate = units::Hertz{0.05};  // G = 1.0
  cfg.duration = units::Seconds{20000.0};
  cfg.slotted = false;
  const AlohaResult pure = simulate_aloha(cfg);
  cfg.slotted = true;
  const AlohaResult slotted = simulate_aloha(cfg);
  EXPECT_GT(slotted.throughput, 1.5 * pure.throughput);
}

TEST(Aloha, MultipleChannelsReduceCollisions) {
  // The paper's alternative: "set f_back to different values so the
  // backscattered signals lie in different unused FM bands".
  AlohaConfig cfg;
  cfg.num_tags = 40;
  cfg.frame = units::Seconds{0.5};
  cfg.per_tag_rate = units::Hertz{0.1};
  cfg.duration = units::Seconds{10000.0};
  cfg.num_channels = 1;
  const AlohaResult one = simulate_aloha(cfg);
  cfg.num_channels = 8;
  const AlohaResult eight = simulate_aloha(cfg);
  EXPECT_GT(eight.success_probability, one.success_probability + 0.2);
}

TEST(Aloha, TheoryPeaks) {
  // Pure Aloha peaks at G=0.5 with S=1/(2e); slotted at G=1 with 1/e.
  EXPECT_NEAR(aloha_theoretical_throughput(0.5, false), 0.1839, 1e-3);
  EXPECT_NEAR(aloha_theoretical_throughput(1.0, true), 0.3679, 1e-3);
}

TEST(Aloha, Validation) {
  AlohaConfig bad;
  bad.num_tags = 0;
  EXPECT_THROW(simulate_aloha(bad), std::invalid_argument);
}

TEST(Harvest, StrongRfSustainsContinuousOperation) {
  HarvestConfig cfg;
  cfg.rf_power = units::Dbm{-10.0};  // 100 uW at the antenna
  cfg.rf_efficiency = 0.3;   // 30 uW harvested > 11.07 uW load
  const DutyCycleResult r = sustainable_duty_cycle(cfg);
  EXPECT_NEAR(r.sustainable_duty_cycle, 1.0, 1e-9);
  EXPECT_NEAR(r.effective_bps_3200, 3200.0, 1e-6);
}

TEST(Harvest, WeakRfForcesDutyCycling) {
  HarvestConfig cfg;
  cfg.rf_power = units::Dbm{-20.0};  // 10 uW in
  cfg.rf_efficiency = 0.2;   // 2 uW harvested
  const DutyCycleResult r = sustainable_duty_cycle(cfg);
  EXPECT_GT(r.sustainable_duty_cycle, 0.1);
  EXPECT_LT(r.sustainable_duty_cycle, 0.3);
  EXPECT_NEAR(r.effective_bps_100, 100.0 * r.sustainable_duty_cycle, 1e-9);
}

TEST(Harvest, SolarDominatesOutdoors) {
  HarvestConfig rf_only;
  rf_only.rf_power = units::Dbm{-30.0};
  HarvestConfig with_solar = rf_only;
  with_solar.solar_area_cm2 = 4.0;
  with_solar.solar_irradiance_uw_per_cm2 = 100.0;  // indoor light
  const DutyCycleResult a = sustainable_duty_cycle(rf_only);
  const DutyCycleResult b = sustainable_duty_cycle(with_solar);
  EXPECT_GT(b.harvested_uw, 10.0 * a.harvested_uw);
  EXPECT_GT(b.sustainable_duty_cycle, a.sustainable_duty_cycle);
}

TEST(Harvest, NoHarvestMeansNoDuty) {
  HarvestConfig cfg;
  cfg.rf_power = units::Dbm{-60.0};
  cfg.rf_efficiency = 0.05;
  const DutyCycleResult r = sustainable_duty_cycle(cfg);
  EXPECT_NEAR(r.sustainable_duty_cycle, 0.0, 1e-6);
}

TEST(Harvest, Validation) {
  HarvestConfig cfg;
  EXPECT_THROW(sustainable_duty_cycle(cfg, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::core
