// dsp::RingBuffer backpressure and shutdown semantics, exercised with real
// threads (this binary runs in the `threaded` ctest lane and under TSan in
// CI): a producer must block — not drop or overwrite — when the slowest
// consumer lags by a full ring; residual blocks drain after finish(); and a
// mid-stream stop() unblocks everyone with no deadlock.
#include "dsp/ring_buffer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

namespace fmbs::dsp {
namespace {

TEST(RingBuffer, RejectsDegenerateShapes) {
  EXPECT_THROW(RingBuffer<int>(0, 1), std::invalid_argument);
  EXPECT_THROW(RingBuffer<int>(4, 0), std::invalid_argument);
}

TEST(RingBuffer, SingleThreadedFifoOrder) {
  RingBuffer<int> ring(4, 1);
  for (int v = 0; v < 3; ++v) {
    int* slot = ring.producer_acquire();
    ASSERT_NE(slot, nullptr);
    *slot = v * 10;
    ring.producer_publish();
  }
  ring.finish();
  for (int v = 0; v < 3; ++v) {
    int* slot = ring.consumer_acquire(0);
    ASSERT_NE(slot, nullptr);
    EXPECT_EQ(*slot, v * 10);
    ring.consumer_release(0);
  }
  EXPECT_EQ(ring.consumer_acquire(0), nullptr);  // finished and drained
}

TEST(RingBuffer, ProducerBlocksOnSlowConsumer) {
  // Ring of 2: the producer may run at most 2 blocks ahead. A deliberately
  // slow consumer forces the producer to wait; every published value still
  // arrives exactly once, in order.
  constexpr std::size_t kCapacity = 2;
  constexpr int kBlocks = 50;
  RingBuffer<int> ring(kCapacity, 1);
  std::atomic<int> produced{0};
  std::atomic<int> consumed{0};
  std::atomic<int> max_lead{0};

  std::thread producer([&] {
    for (int v = 0; v < kBlocks; ++v) {
      int* slot = ring.producer_acquire();
      ASSERT_NE(slot, nullptr);
      *slot = v;
      ring.producer_publish();
      produced.fetch_add(1);
      const int lead = produced.load() - consumed.load();
      int seen = max_lead.load();
      while (lead > seen && !max_lead.compare_exchange_weak(seen, lead)) {
      }
    }
    ring.finish();
  });

  std::vector<int> received;
  while (int* slot = ring.consumer_acquire(0)) {
    received.push_back(*slot);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    consumed.fetch_add(1);
    ring.consumer_release(0);
  }
  producer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kBlocks));
  for (int v = 0; v < kBlocks; ++v) EXPECT_EQ(received[static_cast<std::size_t>(v)], v);
  // Backpressure held: the producer never ran more than capacity + the one
  // in-flight block ahead of the consumer.
  EXPECT_LE(max_lead.load(), static_cast<int>(kCapacity) + 1);
}

TEST(RingBuffer, FinishDrainsResidualBlocksToEveryConsumer) {
  // Producer publishes a few blocks and finishes while consumers haven't
  // started: each consumer must still see every block, then get nullptr.
  constexpr std::size_t kConsumers = 3;
  RingBuffer<int> ring(8, kConsumers);
  for (int v = 0; v < 5; ++v) {
    int* slot = ring.producer_acquire();
    ASSERT_NE(slot, nullptr);
    *slot = v;
    ring.producer_publish();
  }
  ring.finish();

  std::vector<std::thread> threads;
  std::vector<std::vector<int>> got(kConsumers);
  threads.reserve(kConsumers);
  for (std::size_t k = 0; k < kConsumers; ++k) {
    threads.emplace_back([&, k] {
      while (int* slot = ring.consumer_acquire(k)) {
        got[k].push_back(*slot);
        ring.consumer_release(k);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t k = 0; k < kConsumers; ++k) {
    ASSERT_EQ(got[k].size(), 5U) << "consumer " << k;
    for (int v = 0; v < 5; ++v) EXPECT_EQ(got[k][static_cast<std::size_t>(v)], v);
  }
}

TEST(RingBuffer, StopUnblocksProducerAndConsumers) {
  // A full ring (producer blocked) and an empty follow-up acquire (consumer
  // blocked) must both return nullptr promptly after stop() — the clean
  // mid-stream teardown path the streaming engine uses on worker failure.
  RingBuffer<int> ring(1, 2);
  int* slot = ring.producer_acquire();
  ASSERT_NE(slot, nullptr);
  *slot = 7;
  ring.producer_publish();

  std::atomic<bool> producer_returned{false};
  std::thread producer([&] {
    int* blocked = ring.producer_acquire();  // ring full: blocks until stop
    EXPECT_EQ(blocked, nullptr);
    producer_returned.store(true);
  });
  std::thread consumer0([&] {
    // Drains the one block, then blocks on the next acquire until stop.
    // Consumer 1 never consumes, so the ring stays full and the producer
    // stays blocked too — stop() is the only way out for everyone.
    int* first = ring.consumer_acquire(0);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(*first, 7);
    ring.consumer_release(0);
    int* second = ring.consumer_acquire(0);
    EXPECT_EQ(second, nullptr);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(producer_returned.load());
  ring.stop();
  producer.join();
  consumer0.join();
  EXPECT_TRUE(ring.stopped());
  EXPECT_EQ(ring.consumer_acquire(1), nullptr);  // stopped beats pending data
}

}  // namespace
}  // namespace fmbs::dsp
