// The hybrid fleet engine's contract (threaded label: run_fleet_sweep
// exercises the SweepRunner pool, and the PHY sub-scenes go through the
// shared StationCache):
//  * it shares the signal-level engine's MAC schedule exactly,
//  * uncontested links agree with the full PHY — identical delivery
//    outcome, BER within tolerance — while never rendering a sample,
//  * deep same-power payload collisions resolve analytically as certain
//    losses (no sub-scene), grazing overlaps drop into a PHY cluster,
//  * a fleet sweep is bit-identical at 1/2/8 threads.
#include "core/fleet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "support/determinism.h"
#include "tag/channel_plan.h"

namespace fmbs::core {
namespace {

constexpr std::size_t kBits = 64;  // 0.04 s burst at 1.6 kbps
constexpr double kBurst = 0.04;

/// Tags on disjoint planned channels — no contention by construction — at
/// per-tag ambient powers spanning a clean link, a comfortable link and a
/// hopeless one, with one phone per channel.
Scenario spread_scenario(std::uint64_t seed) {
  Scenario sc;
  sc.name = "fleet-spread";
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 5;
  sc.seed = seed;
  sc.duration = units::Seconds{0.2};
  const auto plan = tag::plan_subcarrier_channels(3);
  // Two saturated-clean links and one hopeless one (-85 dBm is far below
  // the demodulator's sync cliff, so PHY and analytic both sit at chance
  // level; mid-waterfall powers would compare a meaningful analytic BER
  // against a failed-sync PHY decode, which is noise-vs-noise).
  const double powers[] = {-30.0, -35.0, -85.0};
  for (std::size_t i = 0; i < 3; ++i) {
    ScenarioTag t;
    t.name = "tag" + std::to_string(i);
    t.subcarrier = plan[i].subcarrier;
    t.rate = tag::DataRate::k1600bps;
    t.num_bits = kBits;
    t.packet_bits = 32;
    t.tag_power = units::Dbm{powers[i]};
    t.distance_override = units::Feet{4.0};
    t.start = units::Seconds{0.02};
    sc.tags.push_back(std::move(t));
    sc.receivers.push_back(phone_listening_to(plan[i].subcarrier));
  }
  return sc;
}

/// Two equal-power tags talking over each other on one channel (full
/// payload overlap), plus a third well clear of both.
Scenario collision_scenario(std::uint64_t seed, double second_start) {
  Scenario sc;
  sc.name = "fleet-collision";
  sc.station.program.genre = audio::ProgramGenre::kSilence;
  sc.station.program.stereo = false;
  sc.station.seed = 5;
  sc.seed = seed;
  sc.duration = units::Seconds{0.45};
  for (std::size_t i = 0; i < 3; ++i) {
    ScenarioTag t;
    t.name = "tag" + std::to_string(i);
    t.rate = tag::DataRate::k1600bps;
    t.num_bits = kBits;
    t.packet_bits = 32;
    t.tag_power = units::Dbm{-25.0};
    t.distance_override = units::Feet{3.0};
    t.start = units::Seconds{i == 0 ? 0.0 : (i == 1 ? second_start : 0.3)};
    sc.tags.push_back(std::move(t));
  }
  sc.receivers.push_back(phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

const FleetLink* link_of_tag(const FleetResult& result, std::size_t tag) {
  for (const FleetLink& link : result.best_per_tag) {
    if (link.tag_index == tag) return &link;
  }
  return nullptr;
}

TEST(FleetEngine, SharesTheScenarioEnginesMacSchedule) {
  const Scenario sc = spread_scenario(21);
  const FleetResult fleet = FleetEngine().run(sc);
  const ScenarioResult phy = ScenarioEngine({.keep_captures = false}).run(sc);
  ASSERT_EQ(fleet.mac.size(), phy.mac.size());
  for (std::size_t i = 0; i < fleet.mac.size(); ++i) {
    EXPECT_EQ(fleet.mac[i].transmitted, phy.mac[i].transmitted);
    EXPECT_EQ(fleet.mac[i].deferrals, phy.mac[i].deferrals);
    EXPECT_EQ(fleet.mac[i].start_seconds, phy.mac[i].start_seconds);
    EXPECT_EQ(fleet.mac[i].last_sensed_dbm, phy.mac[i].last_sensed_dbm);
  }
}

TEST(FleetEngine, HybridMatchesPhyAtSmallN) {
  const Scenario sc = spread_scenario(21);
  const FleetResult fleet = FleetEngine().run(sc);
  const ScenarioResult phy = ScenarioEngine({.keep_captures = false}).run(sc);

  // Disjoint channels: every link must resolve analytically, no sub-scene.
  EXPECT_EQ(fleet.stats.phy_clusters, 0U);
  EXPECT_EQ(fleet.stats.phy_links, 0U);
  EXPECT_EQ(fleet.stats.analytic_collision, 0U);
  ASSERT_EQ(fleet.best_per_tag.size(), 3U);
  ASSERT_EQ(phy.best_per_tag.size(), 3U);

  for (std::size_t i = 0; i < 3; ++i) {
    const FleetLink* fl = link_of_tag(fleet, i);
    ASSERT_NE(fl, nullptr);
    const TagLinkReport* pl = nullptr;
    for (const TagLinkReport& link : phy.best_per_tag) {
      if (link.tag_index == i) pl = &link;
    }
    ASSERT_NE(pl, nullptr);
    const bool phy_delivered =
        pl->burst.packets > 0 && pl->burst.packets_ok == pl->burst.packets;
    EXPECT_EQ(fl->delivered, phy_delivered)
        << "tag " << i << ": hybrid and PHY disagree on delivery";
    EXPECT_NEAR(fl->ber, pl->burst.ber.ber, 0.1)
        << "tag " << i << ": analytic BER drifted from the demodulator";
    // The analytic SNR comes from the same link table the engine renders
    // with, so the reported in-channel power must match exactly.
    EXPECT_EQ(fl->rx_power_dbm, pl->backscatter_rx_power_dbm);
  }
  // Strong link delivers, hopeless link cannot.
  EXPECT_TRUE(link_of_tag(fleet, 0)->delivered);
  EXPECT_FALSE(link_of_tag(fleet, 2)->delivered);
  EXPECT_GT(link_of_tag(fleet, 2)->ber, 0.3);
}

TEST(FleetEngine, SamePowerPayloadCollisionIsAnalyticCertainLoss) {
  // Tag 1 starts one symbol into tag 0's payload: both bursts lose more
  // than a symbol to a same-power interferer — certain loss, no cluster.
  const Scenario sc = collision_scenario(22, 0.01);
  const FleetResult fleet = FleetEngine().run(sc);
  EXPECT_EQ(fleet.stats.phy_clusters, 0U);
  const FleetLink* t0 = link_of_tag(fleet, 0);
  const FleetLink* t1 = link_of_tag(fleet, 1);
  const FleetLink* t2 = link_of_tag(fleet, 2);
  ASSERT_NE(t0, nullptr);
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);
  EXPECT_EQ(t0->resolution, FleetLinkResolution::kAnalyticCollision);
  EXPECT_EQ(t1->resolution, FleetLinkResolution::kAnalyticCollision);
  EXPECT_FALSE(t0->delivered);
  EXPECT_FALSE(t1->delivered);
  EXPECT_EQ(t0->bits_delivered, 0U);
  // The clear bystander is untouched by the collision.
  EXPECT_EQ(t2->resolution, FleetLinkResolution::kAnalyticClear);
  EXPECT_TRUE(t2->delivered);

  // The signal-level engine agrees about all three.
  const ScenarioResult phy = ScenarioEngine({.keep_captures = false}).run(sc);
  for (const TagLinkReport& link : phy.best_per_tag) {
    const bool delivered =
        link.burst.packets > 0 && link.burst.packets_ok == link.burst.packets;
    EXPECT_EQ(delivered, link.tag_index == 2)
        << "PHY disagrees for tag " << link.tag_index;
  }
}

TEST(FleetEngine, GrazingOverlapDropsIntoAPhyCluster) {
  // Tag 1 starts 2 ms before tag 0's payload ends: a sub-symbol graze the
  // analytic rule refuses to call — the pair goes to the PHY.
  const Scenario sc = collision_scenario(23, kBurst - 0.002);
  const FleetResult fleet = FleetEngine().run(sc);
  EXPECT_EQ(fleet.stats.phy_clusters, 1U);
  EXPECT_EQ(fleet.stats.phy_tags_rendered, 2U);
  EXPECT_GT(fleet.stats.phy_subscene_seconds, 0.0);
  const FleetLink* t0 = link_of_tag(fleet, 0);
  const FleetLink* t1 = link_of_tag(fleet, 1);
  const FleetLink* t2 = link_of_tag(fleet, 2);
  ASSERT_NE(t0, nullptr);
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);
  EXPECT_EQ(t0->resolution, FleetLinkResolution::kPhyCluster);
  EXPECT_EQ(t1->resolution, FleetLinkResolution::kPhyCluster);
  EXPECT_EQ(t2->resolution, FleetLinkResolution::kAnalyticClear);
  EXPECT_TRUE(t2->delivered);
  // The sub-scene really decoded the grazed bursts: BERs are in range and
  // the reports carry the demodulator's packet accounting.
  EXPECT_GE(t0->ber, 0.0);
  EXPECT_LE(t0->ber, 0.55);
  EXPECT_GE(t1->ber, 0.0);
  EXPECT_LE(t1->ber, 0.55);
}

TEST(FleetEngine, RejectsCustomBasebandTags) {
  Scenario sc = collision_scenario(24, 0.3);
  sc.tags[0].custom_baseband.assign(480, 0.1F);
  EXPECT_THROW((void)FleetEngine().run(sc), std::invalid_argument);
}

TEST(FleetEngine, FleetSweepBitIdenticalAcrossThreads) {
  const auto make_sweep = [] {
    std::vector<Scenario> sweep;
    for (std::uint64_t k = 0; k < 3; ++k) {
      Scenario spread = spread_scenario(0);  // seed derived by the policy
      spread.name += "-" + std::to_string(k);
      spread.tags[0].tag_power = units::Dbm{-30.0 - static_cast<double>(k)};
      sweep.push_back(std::move(spread));
      // Include a graze point so sub-scene rendering is inside the
      // bit-identity contract, not just the analytic path.
      Scenario graze = collision_scenario(0, kBurst - 0.002);
      graze.name += "-" + std::to_string(k);
      sweep.push_back(std::move(graze));
    }
    return sweep;
  };

  const auto run_at = [&](std::size_t threads) {
    SweepRunner runner({.threads = threads, .base_seed = 99});
    const FleetEngine engine;
    return run_fleet_sweep(runner, engine, make_sweep());
  };
  const auto compare = [](const std::vector<FleetResult>& ref,
                          const std::vector<FleetResult>& other,
                          std::size_t threads) {
    ASSERT_EQ(ref.size(), other.size()) << threads << " threads";
    for (std::size_t i = 0; i < ref.size(); ++i) {
      const FleetResult& a = ref[i];
      const FleetResult& b = other[i];
      EXPECT_EQ(a.aggregate_goodput_bps, b.aggregate_goodput_bps);
      EXPECT_EQ(a.mean_delivery_latency_seconds,
                b.mean_delivery_latency_seconds);
      ASSERT_EQ(a.links.size(), b.links.size());
      for (std::size_t l = 0; l < a.links.size(); ++l) {
        EXPECT_EQ(a.links[l].tag_index, b.links[l].tag_index);
        EXPECT_EQ(a.links[l].receiver_index, b.links[l].receiver_index);
        EXPECT_EQ(a.links[l].resolution, b.links[l].resolution);
        EXPECT_EQ(a.links[l].delivered, b.links[l].delivered);
        EXPECT_EQ(a.links[l].ber, b.links[l].ber);
        EXPECT_EQ(a.links[l].snr_db, b.links[l].snr_db);
        EXPECT_EQ(a.links[l].rx_power_dbm, b.links[l].rx_power_dbm);
        EXPECT_EQ(a.links[l].bits_delivered, b.links[l].bits_delivered);
        EXPECT_EQ(a.links[l].latency_seconds, b.links[l].latency_seconds);
      }
      ASSERT_EQ(a.mac.size(), b.mac.size());
      for (std::size_t t = 0; t < a.mac.size(); ++t) {
        EXPECT_EQ(a.mac[t].start_seconds, b.mac[t].start_seconds);
        EXPECT_EQ(a.mac[t].transmitted, b.mac[t].transmitted);
      }
    }
  };
  test::ExpectBitIdenticalAcrossThreads(run_at, compare);
}

}  // namespace
}  // namespace fmbs::core
