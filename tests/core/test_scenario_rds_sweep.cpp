// Slow-lane RDS loopback sweep (paper §4.2, §8): one RadioText poster heard
// by the full phone receiver chain across a distance (i.e. SNR) sweep. At
// the near end the data plane is perfect — station PS name and tag
// RadioText both recovered, zero failed blocks — and the block error rate
// degrades monotonically to 1.0 (sync lost) as the link budget collapses,
// the RDS twin of the FSK BER-vs-distance story.
#include "core/scenario.h"

#include <gtest/gtest.h>

#include <vector>

#include "tag/channel_plan.h"

namespace fmbs::core {
namespace {

constexpr const char* kAdText = "SIMPLY THREE - TICKETS 50% OFF";

Scenario sweep_point(double distance_ft) {
  Scenario sc;
  sc.name = "rds-sweep";
  sc.seed = 5;
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 5;
  sc.station.rds_level = 0.05;
  sc.station.rds_ps_name = "SWEEPFMX";
  sc.duration = units::Seconds{0.75};  // 8 RadioText groups at 1187.5 bps

  ScenarioTag t;
  t.name = "ad-poster";
  t.rds_radiotext = kAdText;
  t.tag_power = units::Dbm{-35.0};
  t.distance_override = units::Feet{distance_ft};
  sc.tags.push_back(std::move(t));
  sc.receivers.push_back(phone_listening_to(sc.tags[0].subcarrier));
  // A radio parked on the station carrier itself: the ambient channel's
  // own RDS (PS name) rides the same scene render.
  ScenarioReceiver parked;
  parked.name = "parked-radio";
  parked.tune_offset = units::Hertz{0.0};
  sc.receivers.push_back(std::move(parked));
  return sc;
}

TEST(ScenarioRdsSweep, BlerDegradesMonotonicallyWithDistance) {
  const std::vector<double> distances_ft{4, 64, 192, 256, 384};
  const ScenarioEngine engine({.keep_captures = false});

  std::vector<double> bler;
  for (std::size_t i = 0; i < distances_ft.size(); ++i) {
    const ScenarioResult result = engine.run(sweep_point(distances_ft[i]));
    ASSERT_EQ(result.best_per_tag.size(), 1U) << distances_ft[i];
    const TagLinkReport& link = result.best_per_tag[0];
    ASSERT_TRUE(link.rds.has_value()) << distances_ft[i];
    bler.push_back(link.rds->bler);

    if (i == 0) {
      // High SNR: the whole data plane is clean end to end.
      EXPECT_TRUE(link.rds->synced);
      EXPECT_EQ(link.rds->radiotext, kAdText);
      EXPECT_EQ(link.rds->blocks_failed, 0U);
      ASSERT_TRUE(result.receivers[1].station_rds.has_value());
      EXPECT_EQ(result.receivers[1].station_rds->ps_name, "SWEEPFMX");
    }
  }
  for (std::size_t i = 1; i < bler.size(); ++i) {
    EXPECT_GE(bler[i] + 1e-9, bler[i - 1])
        << "BLER must not improve as the link stretches ("
        << distances_ft[i - 1] << " ft -> " << distances_ft[i] << " ft)";
  }
  EXPECT_DOUBLE_EQ(bler.front(), 0.0);
  EXPECT_DOUBLE_EQ(bler.back(), 1.0) << "far end should lose block sync";
}

}  // namespace
}  // namespace fmbs::core
