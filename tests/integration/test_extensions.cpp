// Integration tests for the section-8 extensions and cross-cutting
// properties: FEC-protected links, RDS backscatter, single-sideband tags,
// and end-to-end invariants that hold across configurations.
#include <gtest/gtest.h>

#include "core/fmbs.h"
#include "fm/rds.h"
#include "dsp/spectrum.h"

namespace fmbs {
namespace {

using audio::ProgramGenre;
using core::ExperimentPoint;
using tag::DataRate;
using tag::FecScheme;

// FEC at a marginal operating point: coding must reduce payload BER
// (the paper's "we can use coding to improve the FM backscatter range").
TEST(Extensions, ConvolutionalCodingExtendsRange) {
  // Raw channel BER must sit in the code's working region (a few percent):
  // the 1.6 kbps cliff at -60 dBm / 14 ft.
  ExperimentPoint point;
  point.tag_power = units::Dbm{-60.0};
  point.distance = units::Feet{14.0};
  point.genre = ProgramGenre::kNews;
  const auto uncoded =
      core::run_overlay_ber(point, DataRate::k1600bps, 512);
  const auto coded = core::run_overlay_ber_coded(point, DataRate::k1600bps,
                                                 512, FecScheme::kConvolutionalK7);
  EXPECT_GT(uncoded.ber, 0.005) << "operating point should be marginal";
  EXPECT_LT(coded.ber, uncoded.ber * 0.5)
      << "uncoded=" << uncoded.ber << " coded=" << coded.ber;
}

TEST(Extensions, CodedLinkCleanAtStrongSignal) {
  ExperimentPoint point;
  point.tag_power = units::Dbm{-30.0};
  point.distance = units::Feet{4.0};
  point.genre = ProgramGenre::kNews;
  for (const auto scheme : {FecScheme::kHamming74, FecScheme::kConvolutionalK7}) {
    const auto r =
        core::run_overlay_ber_coded(point, DataRate::k1600bps, 256, scheme);
    EXPECT_EQ(r.bit_errors, 0U) << tag::to_string(scheme);
  }
}

// RDS backscatter: the tag writes its own RDS text into the (otherwise
// empty) 57 kHz subband of the backscatter channel; an RDS-capable receiver
// tuned there decodes the PS name.
TEST(Extensions, RdsBackscatterCarriesStationText) {
  core::SystemConfig cfg;
  cfg.station.program.genre = ProgramGenre::kNews;
  cfg.station.program.stereo = false;
  cfg.scene.tag_power = units::Dbm{-25.0};
  cfg.scene.tag_rx_distance = units::Feet{3.0};

  const double duration = 2.5;
  const auto groups = fm::make_ps_groups("POSTER01");
  const auto bits = fm::serialize_groups(groups);
  const auto num_samples =
      static_cast<std::size_t>(duration * fm::kMpxRate);
  const auto bb = tag::compose_rds_baseband(bits, num_samples, 0.3);
  const core::SimulationResult sim = core::simulate(cfg, bb, units::Seconds{duration});

  const auto rds = fm::decode_rds(sim.backscatter_rx.fm.mpx, fm::kMpxRate);
  EXPECT_EQ(rds.ps_name, "POSTER01");
}

// The SSB subcarrier (paper footnote 2) must deliver the same audio link as
// the band-limited square wave — it only suppresses the mirror copy.
TEST(Extensions, SingleSidebandEquivalentInChannel) {
  ExperimentPoint point;
  point.tag_power = units::Dbm{-30.0};
  point.distance = units::Feet{4.0};
  core::SystemConfig base = core::make_system(point);
  base.station.program.genre = ProgramGenre::kSilence;
  base.station.program.stereo = false;

  const auto tone = audio::make_tone(1000.0, 1.0, 1.0, fm::kAudioRate);
  const auto bb = tag::compose_overlay_baseband(tone, core::kOverlayLevel);

  auto snr_for = [&](tag::SubcarrierMode mode) {
    core::SystemConfig cfg = base;
    cfg.tag.subcarrier.mode = mode;
    const auto sim = core::simulate(cfg, bb, units::Seconds{1.0});
    const auto skip = static_cast<std::size_t>(0.1 * fm::kAudioRate);
    return dsp::tone_snr_db(
        std::span<const float>(sim.backscatter_rx.mono.samples)
            .subspan(skip, sim.backscatter_rx.mono.size() - skip),
        fm::kAudioRate, 1000.0, 100.0, 15000.0);
  };
  const double square = snr_for(tag::SubcarrierMode::kBandlimitedSquare);
  const double ssb = snr_for(tag::SubcarrierMode::kSingleSideband);
  EXPECT_NEAR(square, ssb, 3.0);
}

// Negative f_back: the spectrum planner often picks the empty channel
// *below* the station (e.g. Seattle -200 kHz). The square wave's mirror
// copy serves that channel directly; the receiver tunes down-band.
TEST(Extensions, NegativeShiftBackscatterWorks) {
  core::SystemConfig cfg;
  cfg.station.program.genre = ProgramGenre::kSilence;
  cfg.station.program.stereo = false;
  cfg.scene.tag_power = units::Dbm{-25.0};
  cfg.scene.tag_rx_distance = units::Feet{4.0};
  cfg.tag.subcarrier.shift = units::Hertz{-600000.0};

  const auto tone = audio::make_tone(1500.0, 1.0, 1.0, fm::kAudioRate);
  const auto bb = tag::compose_overlay_baseband(tone, core::kOverlayLevel);
  const auto sim = core::simulate(cfg, bb, units::Seconds{1.0});
  const auto skip = static_cast<std::size_t>(0.1 * fm::kAudioRate);
  const double snr = dsp::tone_snr_db(
      std::span<const float>(sim.backscatter_rx.mono.samples)
          .subspan(skip, sim.backscatter_rx.mono.size() - skip),
      fm::kAudioRate, 1500.0, 100.0, 15000.0);
  EXPECT_GT(snr, 25.0) << "down-band backscatter channel not receivable";
}

// Framing over the air: packets survive and CRC rejects corruption — at a
// weak operating point the decoder either returns the exact payload or
// nothing, never silently corrupted bytes.
TEST(Extensions, FrameCrcNeverLies) {
  for (const double power : {-30.0, -55.0, -62.0}) {
    ExperimentPoint point;
    point.tag_power = units::Dbm{power};
    point.distance = units::Feet{14.0};
    point.genre = ProgramGenre::kNews;
    core::SystemConfig cfg = core::make_system(point);

    const std::vector<std::uint8_t> payload{'f', 'm', 'b', 's', '!', 0x00, 0xFF};
    const auto bits = tag::encode_frame(payload);
    const auto wave = tag::modulate_fsk(bits, DataRate::k1600bps, fm::kAudioRate);
    const auto bb = tag::compose_overlay_baseband(wave, core::kOverlayLevel);
    const auto sim = core::simulate(cfg, bb, units::Seconds{wave.duration_seconds() + 0.2});
    const auto demod = rx::demodulate_fsk(sim.backscatter_rx.mono,
                                          DataRate::k1600bps, bits.size());
    const auto frame = tag::decode_frame(demod.bits);
    if (frame.has_value()) {
      EXPECT_EQ(*frame, payload) << "CRC accepted corrupted payload @" << power;
    }
  }
}

// Cross-technique invariant: at strong signal every technique delivers its
// content; the stereo path must not leak into mono and vice versa.
TEST(Extensions, StereoAndMonoPathsAreOrthogonal) {
  ExperimentPoint point;
  point.tag_power = units::Dbm{-20.0};
  point.distance = units::Feet{3.0};
  point.genre = ProgramGenre::kSilence;
  point.stereo_station = false;
  core::SystemConfig cfg = core::make_system(point);
  cfg.station.program.genre = ProgramGenre::kSilence;
  cfg.station.program.stereo = false;

  // Tag sends a 2 kHz tone in the stereo stream (with pilot).
  const auto tone = audio::make_tone(2000.0, 1.0, 1.2, fm::kAudioRate);
  const auto bb = tag::compose_stereo_baseband(tone, /*insert_pilot=*/true);
  const auto sim = core::simulate(cfg, bb, units::Seconds{1.2});
  ASSERT_TRUE(sim.backscatter_rx.fm.stereo_mode);

  const auto side = sim.backscatter_rx.stereo.side();
  const auto mono = sim.backscatter_rx.mono;
  const double p_side = dsp::band_power(side.samples, fm::kAudioRate, 1900.0,
                                        2100.0);
  const double p_mono = dsp::band_power(mono.samples, fm::kAudioRate, 1900.0,
                                        2100.0);
  EXPECT_GT(p_side, 20.0 * p_mono)
      << "stereo-stream content leaked into the mono output";
}

}  // namespace
}  // namespace fmbs
