// End-to-end integration tests: the paper's central claims, exercised
// through the full physical pipeline (station -> RF -> tag switch -> channel
// -> tuner -> FM receiver). No audio-domain shortcuts: if the
// multiplication-to-addition transform were wrong, every test here fails.
#include <gtest/gtest.h>

#include "core/fmbs.h"
#include "dsp/spectrum.h"

namespace fmbs {
namespace {

using audio::ProgramGenre;
using core::ExperimentPoint;
using tag::DataRate;

// The headline theorem (section 3.3): backscattering B(t) with baseband
// FM_back turns RF multiplication into audio addition — an FM receiver tuned
// to fc + f_back outputs FM_audio(t) + FM_back(t). We verify by
// backscattering a 2 kHz tone over a station playing a 700 Hz tone program
// and checking BOTH tones appear in the received audio.
TEST(EndToEnd, MultiplicationBecomesAdditionInAudioDomain) {
  core::SystemConfig cfg;
  cfg.station.program.genre = ProgramGenre::kSilence;
  cfg.station.program.stereo = false;
  cfg.scene.tag_power = units::Dbm{-20.0};
  cfg.scene.tag_rx_distance = units::Feet{4.0};

  const double duration = 1.0;
  // Station program: replace silence with a pure 700 Hz tone by rendering a
  // custom station signal. Easiest physical route: use the news genre? No —
  // use a tone: compose manually below.
  // (The station renderer has no tone genre on purpose; we inject via the
  // mono program by building a station whose program is a tone.)
  // Simplest: run with silence program and verify the backscattered tone,
  // then run with a news program and verify speech + tone coexist.
  const audio::MonoBuffer tone =
      audio::make_tone(2000.0, 1.0, duration, fm::kAudioRate);
  const dsp::rvec bb = tag::compose_overlay_baseband(tone, core::kOverlayLevel);
  const core::SimulationResult sim = core::simulate(cfg, bb, units::Seconds{duration});

  const auto& mono = sim.backscatter_rx.mono;
  ASSERT_GT(mono.size(), 4096U);
  // The backscattered tone must dominate the audio band.
  const double snr = dsp::tone_snr_db(mono.samples, fm::kAudioRate, 2000.0,
                                      100.0, 15000.0);
  EXPECT_GT(snr, 20.0) << "backscattered tone not present in receiver audio";
}

// With a program playing, the receiver hears program + backscatter (overlay).
TEST(EndToEnd, OverlayPreservesBothProgramAndBackscatter) {
  core::SystemConfig cfg;
  cfg.station.program.genre = ProgramGenre::kNews;
  cfg.station.program.stereo = false;
  cfg.station.seed = 11;
  cfg.scene.tag_power = units::Dbm{-20.0};
  cfg.scene.tag_rx_distance = units::Feet{4.0};

  const double duration = 2.0;
  const audio::MonoBuffer tone =
      audio::make_tone(11000.0, 0.8, duration, fm::kAudioRate);
  const dsp::rvec bb = tag::compose_overlay_baseband(tone, core::kOverlayLevel);
  const core::SimulationResult sim = core::simulate(cfg, bb, units::Seconds{duration});
  const auto& mono = sim.backscatter_rx.mono;

  // Tone present at 11 kHz (above speech)...
  const double p_tone = dsp::band_power(mono.samples, fm::kAudioRate, 10800.0,
                                        11200.0);
  // ...and speech energy present below 4 kHz.
  const double p_speech =
      dsp::band_power(mono.samples, fm::kAudioRate, 200.0, 4000.0);
  const double p_gap =
      dsp::band_power(mono.samples, fm::kAudioRate, 6000.0, 7000.0);
  EXPECT_GT(p_tone, 10.0 * p_gap) << "backscatter tone missing";
  EXPECT_GT(p_speech, 10.0 * p_gap) << "ambient program missing";
}

// Data over overlay backscatter decodes at strong power / close range.
TEST(EndToEnd, Decodes100bpsCleanly) {
  ExperimentPoint point;
  point.tag_power = units::Dbm{-30.0};
  point.distance = units::Feet{4.0};
  point.genre = ProgramGenre::kNews;
  const rx::BerResult ber = core::run_overlay_ber(point, DataRate::k100bps, 60);
  EXPECT_EQ(ber.bit_errors, 0U) << "BER=" << ber.ber;
}

TEST(EndToEnd, Decodes3200bpsAtStrongPower) {
  ExperimentPoint point;
  point.tag_power = units::Dbm{-20.0};
  point.distance = units::Feet{4.0};
  point.genre = ProgramGenre::kNews;
  const rx::BerResult ber = core::run_overlay_ber(point, DataRate::k3200bps, 480);
  EXPECT_LT(ber.ber, 0.02) << "errors=" << ber.bit_errors;
}

// BER grows with distance (Fig. 8 shape).
TEST(EndToEnd, BerDegradesWithDistance) {
  ExperimentPoint near;
  near.tag_power = units::Dbm{-60.0};
  near.distance = units::Feet{2.0};
  ExperimentPoint far = near;
  far.distance = units::Feet{20.0};
  const auto ber_near = core::run_overlay_ber(near, DataRate::k3200bps, 320);
  const auto ber_far = core::run_overlay_ber(far, DataRate::k3200bps, 320);
  EXPECT_LE(ber_near.ber, ber_far.ber + 0.02);
  EXPECT_GT(ber_far.ber, 0.05) << "3.2 kbps at -60 dBm / 20 ft should fail";
}

// Stereo backscatter on a mono station: pilot injection flips the receiver
// into stereo mode and the data rides the clean L-R stream (Fig. 13b).
TEST(EndToEnd, MonoToStereoConversionCarriesData) {
  ExperimentPoint point;
  point.tag_power = units::Dbm{-20.0};
  point.distance = units::Feet{2.0};
  point.genre = ProgramGenre::kNews;
  point.stereo_station = false;  // mono station; tag inserts the pilot
  const auto ber = core::run_stereo_ber(point, DataRate::k1600bps, 320);
  EXPECT_LT(ber.ber, 0.05) << "errors=" << ber.bit_errors;
}

// Cooperative cancellation recovers clean audio (Fig. 12: PESQ ~ 4).
TEST(EndToEnd, CooperativeCancellationBeatsOverlay) {
  ExperimentPoint point;
  point.tag_power = units::Dbm{-30.0};
  point.distance = units::Feet{4.0};
  point.genre = ProgramGenre::kNews;
  const double overlay = core::run_overlay_pesq(point, units::Seconds{1.6});
  const double coop = core::run_cooperative_pesq(point, units::Seconds{1.6});
  EXPECT_GT(coop, overlay + 0.5)
      << "overlay=" << overlay << " coop=" << coop;
  EXPECT_GT(coop, 3.0);
}

}  // namespace
}  // namespace fmbs
