// Sparse-vs-dense equivalence over the six golden scenarios: demand-driven
// rendering (SceneRendering::kSparse, the default) must reproduce the
// exhaustive engine's decoded outcomes *exactly* — station selection and
// handoffs, MAC schedules, every link's bit errors, PER, RDS text and
// goodput. What the sparse engine drops sits >70 dB down in every receiver's
// tuner stopband, below every modeled noise floor, so the decoded-outcome
// comparison is EXPECT_EQ, not EXPECT_NEAR: a single flipped bit anywhere
// means the pruning rule reached into the audible scene and is a bug.
#include <gtest/gtest.h>

#include <cstddef>

#include "golden_scenarios.h"

namespace fmbs::golden {
namespace {

void expect_same_link(const core::TagLinkReport& sparse,
                      const core::TagLinkReport& dense,
                      const std::string& where) {
  EXPECT_EQ(sparse.tag_index, dense.tag_index) << where;
  EXPECT_EQ(sparse.receiver_index, dense.receiver_index) << where;
  EXPECT_EQ(sparse.burst.ber.bit_errors, dense.burst.ber.bit_errors) << where;
  EXPECT_EQ(sparse.burst.ber.bits_compared, dense.burst.ber.bits_compared)
      << where;
  EXPECT_EQ(sparse.burst.ber.ber, dense.burst.ber.ber) << where;
  EXPECT_EQ(sparse.burst.packets, dense.burst.packets) << where;
  EXPECT_EQ(sparse.burst.packets_ok, dense.burst.packets_ok) << where;
  EXPECT_EQ(sparse.burst.bits_delivered, dense.burst.bits_delivered) << where;
  EXPECT_EQ(sparse.burst.per, dense.burst.per) << where;
  EXPECT_EQ(sparse.goodput_bps, dense.goodput_bps) << where;
  ASSERT_EQ(sparse.rds.has_value(), dense.rds.has_value()) << where;
  if (sparse.rds.has_value()) {
    EXPECT_EQ(sparse.rds->synced, dense.rds->synced) << where;
    EXPECT_EQ(sparse.rds->blocks_ok, dense.rds->blocks_ok) << where;
    EXPECT_EQ(sparse.rds->blocks_failed, dense.rds->blocks_failed) << where;
    EXPECT_EQ(sparse.rds->bler, dense.rds->bler) << where;
    EXPECT_EQ(sparse.rds->ps_name, dense.rds->ps_name) << where;
    EXPECT_EQ(sparse.rds->radiotext, dense.rds->radiotext) << where;
  }
}

void expect_equivalent(const core::Scenario& sc) {
  SCOPED_TRACE(sc.name);
  const core::ScenarioResult sparse =
      core::ScenarioEngine(
          {.keep_captures = false,
           .scene_rendering = core::SceneRendering::kSparse})
          .run(sc);
  const core::ScenarioResult dense =
      core::ScenarioEngine(
          {.keep_captures = false,
           .scene_rendering = core::SceneRendering::kDense})
          .run(sc);

  // The dense engine renders everything; sparse never renders *more*.
  EXPECT_EQ(dense.scene.stations_rendered, dense.scene.stations_total);
  EXPECT_EQ(dense.scene.tags_rendered, dense.scene.tags_total);
  EXPECT_EQ(sparse.scene.stations_total, dense.scene.stations_total);
  EXPECT_EQ(sparse.scene.tags_total, dense.scene.tags_total);
  EXPECT_LE(sparse.scene.stations_rendered, dense.scene.stations_rendered);
  EXPECT_LE(sparse.scene.tags_rendered, dense.scene.tags_rendered);
  EXPECT_GE(sparse.scene.stations_rendered, 1U);  // station 0 always renders

  // Geometry and handoffs.
  EXPECT_EQ(sparse.selected_station, dense.selected_station);
  ASSERT_EQ(sparse.segments.size(), dense.segments.size());
  for (std::size_t k = 0; k < sparse.segments.size(); ++k) {
    EXPECT_EQ(sparse.segments[k].start_seconds,
              dense.segments[k].start_seconds) << k;
    EXPECT_EQ(sparse.segments[k].end_seconds, dense.segments[k].end_seconds)
        << k;
    EXPECT_EQ(sparse.segments[k].selected_station,
              dense.segments[k].selected_station) << k;
  }

  // MAC outcomes (carrier sense listens to the rendered scene — pruning
  // must not change what a tag's sensor hears on its own channel).
  ASSERT_EQ(sparse.mac.size(), dense.mac.size());
  for (std::size_t t = 0; t < sparse.mac.size(); ++t) {
    EXPECT_EQ(sparse.mac[t].transmitted, dense.mac[t].transmitted) << t;
    EXPECT_EQ(sparse.mac[t].deferrals, dense.mac[t].deferrals) << t;
    EXPECT_EQ(sparse.mac[t].start_seconds, dense.mac[t].start_seconds) << t;
  }

  // Every decoded link, at every receiver.
  ASSERT_EQ(sparse.receivers.size(), dense.receivers.size());
  for (std::size_t r = 0; r < sparse.receivers.size(); ++r) {
    const auto& sr = sparse.receivers[r];
    const auto& dr = dense.receivers[r];
    ASSERT_EQ(sr.links.size(), dr.links.size()) << "receiver " << r;
    for (std::size_t l = 0; l < sr.links.size(); ++l) {
      expect_same_link(sr.links[l], dr.links[l],
                       "receiver " + std::to_string(r) + " link " +
                           std::to_string(l));
    }
    ASSERT_EQ(sr.station_rds.has_value(), dr.station_rds.has_value())
        << "receiver " << r;
    if (sr.station_rds.has_value()) {
      EXPECT_EQ(sr.station_rds->bler, dr.station_rds->bler) << r;
      EXPECT_EQ(sr.station_rds->ps_name, dr.station_rds->ps_name) << r;
    }
  }

  // Best-link selection and the headline aggregate.
  ASSERT_EQ(sparse.best_per_tag.size(), dense.best_per_tag.size());
  for (std::size_t i = 0; i < sparse.best_per_tag.size(); ++i) {
    expect_same_link(sparse.best_per_tag[i], dense.best_per_tag[i],
                     "best_per_tag " + std::to_string(i));
  }
  EXPECT_EQ(sparse.aggregate_goodput_bps, dense.aggregate_goodput_bps);
}

TEST(SparseDenseEquivalence, SoloPoster) { expect_equivalent(solo_poster()); }
TEST(SparseDenseEquivalence, CityDisjoint) {
  expect_equivalent(city_disjoint());
}
TEST(SparseDenseEquivalence, AlohaBurst) { expect_equivalent(aloha_burst()); }
TEST(SparseDenseEquivalence, TwoStationCity) {
  expect_equivalent(two_station_city());
}
TEST(SparseDenseEquivalence, MobileHandoff) {
  expect_equivalent(mobile_handoff());
}
TEST(SparseDenseEquivalence, RdsCity) { expect_equivalent(rds_city()); }

// A scene with genuinely out-of-neighborhood emitters: the poster's channel
// (and the only tune) is at +600 kHz, and two extra stations are parked at
// -800 kHz and -1 MHz — 1.4 and 1.6 MHz away from the tune, far outside the
// two-channel neighborhood — so the sparse engine must skip them. This is
// the case where the dense and sparse engines actually run different
// amounts of work, so the stats must show real pruning, not vacuous
// equality.
TEST(SparseDenseEquivalence, FarStationsArePruned) {
  core::Scenario sc = solo_poster();
  sc.name = "far_stations";
  core::ScenarioStation center;
  center.name = "center";
  center.config = sc.station;
  center.offset = units::Hertz{0.0};
  center.power = units::Dbm{-28.0};
  core::ScenarioStation far_a;
  far_a.name = "far-a";
  far_a.config.program.genre = audio::ProgramGenre::kPop;
  far_a.config.program.stereo = false;
  far_a.config.seed = 91;
  far_a.offset = units::Hertz{-800e3};
  far_a.power = units::Dbm{-30.0};
  core::ScenarioStation far_b = far_a;
  far_b.name = "far-b";
  far_b.config.seed = 92;
  far_b.offset = units::Hertz{-1000e3};
  sc.stations = {center, far_a, far_b};
  // Pin the poster to the center station; add a second tag pinned to far-a
  // whose channel (-800k + 100k) no receiver tunes near.
  sc.tags[0].station_index = 0;
  core::ScenarioTag ghost = sc.tags[0];
  ghost.name = "ghost";
  ghost.station_index = 1;
  ghost.subcarrier.shift = units::Hertz{100e3};
  sc.tags.push_back(ghost);

  const core::ScenarioResult sparse =
      core::ScenarioEngine({.keep_captures = false}).run(sc);
  EXPECT_EQ(sparse.scene.stations_total, 3U);
  EXPECT_EQ(sparse.scene.stations_rendered, 1U);
  EXPECT_EQ(sparse.scene.tags_total, 2U);
  EXPECT_EQ(sparse.scene.tags_rendered, 1U);
  EXPECT_EQ(sparse.station_renders[1], nullptr);
  EXPECT_EQ(sparse.station_renders[2], nullptr);
  // The ghost's MAC outcome is still reported even though its waveform was
  // never composed.
  ASSERT_EQ(sparse.mac.size(), 2U);
  EXPECT_TRUE(sparse.mac[1].transmitted);

  // And the poster's decode matches the dense render of the same scene.
  const core::ScenarioResult dense =
      core::ScenarioEngine(
          {.keep_captures = false,
           .scene_rendering = core::SceneRendering::kDense})
          .run(sc);
  EXPECT_EQ(dense.scene.stations_rendered, 3U);
  ASSERT_FALSE(sparse.best_per_tag.empty());
  ASSERT_FALSE(dense.best_per_tag.empty());
  expect_same_link(sparse.best_per_tag[0], dense.best_per_tag[0], "poster");
}

}  // namespace
}  // namespace fmbs::golden
