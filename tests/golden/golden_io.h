// Golden-trace I/O for the regression harness: a trace is the decoded
// outcome of one reference scenario (per-tag BER / PER / goodput and the
// aggregate), committed as a small JSON file and re-checked on every run.
// The writer and the (subset-)JSON reader live together so the round trip
// can never drift apart. Test-tree-only header — not part of the library.
#pragma once

#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scenario.h"

namespace fmbs::golden {

struct GoldenTag {
  std::string name;
  double ber = 0.0;
  double per = 0.0;
  double goodput_bps = 0.0;
  std::uint64_t bit_errors = 0;
  std::uint64_t bits = 0;
};

/// One timeline segment's geometry snapshot: which station each tag
/// backscattered. A selected_station change between consecutive segments is
/// the handoff the trace pins down.
struct GoldenSegment {
  double start_seconds = 0.0;
  std::vector<int> selected_station;
};

struct GoldenTrace {
  std::string scenario;
  std::uint64_t seed = 0;
  double aggregate_goodput_bps = 0.0;
  /// Present only for segmented (timeline) scenarios — single-segment
  /// traces omit it so their committed files stay byte-identical.
  std::vector<GoldenSegment> segments;
  std::vector<GoldenTag> tags;
};

inline GoldenTrace trace_from_result(const core::Scenario& scenario,
                                     const core::ScenarioResult& result) {
  GoldenTrace trace;
  trace.scenario = scenario.name;
  trace.seed = scenario.seed;
  trace.aggregate_goodput_bps = result.aggregate_goodput_bps;
  if (result.segments.size() > 1) {
    for (const core::ScenarioSegmentReport& seg : result.segments) {
      trace.segments.push_back({seg.start_seconds, seg.selected_station});
    }
  }
  for (const core::TagLinkReport& link : result.best_per_tag) {
    GoldenTag tag;
    tag.name = scenario.tags[link.tag_index].name;
    tag.ber = link.burst.ber.ber;
    tag.per = link.burst.per;
    tag.goodput_bps = link.goodput_bps;
    tag.bit_errors = link.burst.ber.bit_errors;
    tag.bits = link.burst.ber.bits_compared;
    trace.tags.push_back(std::move(tag));
  }
  return trace;
}

// ---- Writer -----------------------------------------------------------------

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

inline void write_golden(const std::string& path, const GoldenTrace& trace) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_golden: cannot open " + path);
  out.precision(12);
  out << "{\n";
  out << "  \"scenario\": \"" << json_escape(trace.scenario) << "\",\n";
  out << "  \"seed\": " << trace.seed << ",\n";
  out << "  \"aggregate_goodput_bps\": " << trace.aggregate_goodput_bps << ",\n";
  if (!trace.segments.empty()) {
    out << "  \"segments\": [\n";
    for (std::size_t i = 0; i < trace.segments.size(); ++i) {
      const GoldenSegment& s = trace.segments[i];
      out << "    {\"start\": " << s.start_seconds << ", \"selected\": [";
      for (std::size_t t = 0; t < s.selected_station.size(); ++t) {
        out << s.selected_station[t]
            << (t + 1 < s.selected_station.size() ? ", " : "");
      }
      out << "]}" << (i + 1 < trace.segments.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
  }
  out << "  \"tags\": [\n";
  for (std::size_t i = 0; i < trace.tags.size(); ++i) {
    const GoldenTag& t = trace.tags[i];
    out << "    {\"name\": \"" << json_escape(t.name) << "\", \"ber\": " << t.ber
        << ", \"per\": " << t.per << ", \"goodput_bps\": " << t.goodput_bps
        << ", \"bit_errors\": " << t.bit_errors << ", \"bits\": " << t.bits
        << "}" << (i + 1 < trace.tags.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

// ---- Reader (JSON subset: exactly what the writer emits) --------------------

namespace detail {

class JsonCursor {
 public:
  explicit JsonCursor(std::string text) : text_(std::move(text)) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) {
      throw std::runtime_error(std::string("golden JSON: expected '") + c +
                               "' at offset " + std::to_string(pos_));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      s.push_back(text_[pos_++]);
    }
    expect('"');
    return s;
  }

  double parse_number() {
    skip_ws();
    std::size_t consumed = 0;
    const double v = std::stod(text_.substr(pos_), &consumed);
    pos_ += consumed;
    return v;
  }

 private:
  std::string text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Reads a golden trace; nullopt when the file does not exist. Throws on a
/// malformed file (that is a hard failure, not a missing baseline).
inline std::optional<GoldenTrace> read_golden(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  detail::JsonCursor cur(buf.str());

  GoldenTrace trace;
  cur.expect('{');
  bool more = true;
  while (more) {
    const std::string key = cur.parse_string();
    cur.expect(':');
    if (key == "scenario") {
      trace.scenario = cur.parse_string();
    } else if (key == "seed") {
      trace.seed = static_cast<std::uint64_t>(cur.parse_number());
    } else if (key == "aggregate_goodput_bps") {
      trace.aggregate_goodput_bps = cur.parse_number();
    } else if (key == "segments") {
      cur.expect('[');
      if (!cur.consume(']')) {
        do {
          cur.expect('{');
          GoldenSegment seg;
          do {
            const std::string field = cur.parse_string();
            cur.expect(':');
            if (field == "start") {
              seg.start_seconds = cur.parse_number();
            } else if (field == "selected") {
              cur.expect('[');
              if (!cur.consume(']')) {
                do {
                  seg.selected_station.push_back(
                      static_cast<int>(cur.parse_number()));
                } while (cur.consume(','));
                cur.expect(']');
              }
            } else {
              throw std::runtime_error("golden JSON: unknown segment field " +
                                       field);
            }
          } while (cur.consume(','));
          cur.expect('}');
          trace.segments.push_back(std::move(seg));
        } while (cur.consume(','));
        cur.expect(']');
      }
    } else if (key == "tags") {
      cur.expect('[');
      if (!cur.consume(']')) {
        do {
          cur.expect('{');
          GoldenTag tag;
          do {
            const std::string field = cur.parse_string();
            cur.expect(':');
            if (field == "name") {
              tag.name = cur.parse_string();
            } else if (field == "ber") {
              tag.ber = cur.parse_number();
            } else if (field == "per") {
              tag.per = cur.parse_number();
            } else if (field == "goodput_bps") {
              tag.goodput_bps = cur.parse_number();
            } else if (field == "bit_errors") {
              tag.bit_errors = static_cast<std::uint64_t>(cur.parse_number());
            } else if (field == "bits") {
              tag.bits = static_cast<std::uint64_t>(cur.parse_number());
            } else {
              throw std::runtime_error("golden JSON: unknown tag field " + field);
            }
          } while (cur.consume(','));
          cur.expect('}');
          trace.tags.push_back(std::move(tag));
        } while (cur.consume(','));
        cur.expect(']');
      }
    } else {
      throw std::runtime_error("golden JSON: unknown field " + key);
    }
    more = cur.consume(',');
  }
  cur.expect('}');
  return trace;
}

}  // namespace fmbs::golden
