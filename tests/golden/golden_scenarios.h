// The six golden-trace scenarios, shared between the trace-diff harness
// (test_golden_traces.cpp) and the sparse-vs-dense equivalence suite
// (test_sparse_dense_equivalence.cpp): the exact deployments whose decoded
// outcomes are committed under tests/golden/traces/ are also the deployments
// demand-driven rendering must reproduce bit-for-bit.
#pragma once

#include <cstddef>
#include <string>
#include <utility>

#include "core/scenario.h"
#include "tag/channel_plan.h"

namespace fmbs::golden {

/// One poster tag, one phone: the paper's basic deployment, clean link.
inline core::Scenario solo_poster() {
  core::Scenario sc;
  sc.name = "solo_poster";
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 21;
  sc.seed = 21;
  sc.duration = units::Seconds{0.25};
  core::ScenarioTag t;
  t.name = "poster";
  t.rate = tag::DataRate::k1600bps;
  t.num_bits = 320;
  t.packet_bits = 80;
  t.tag_power = units::Dbm{-25.0};
  t.distance_override = units::Feet{4.0};
  sc.tags.push_back(std::move(t));
  sc.receivers.push_back(core::phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

/// Four tags on four planned disjoint channels; a phone and a car listen to
/// two of them (the others transmit as pure adjacent-channel neighbors).
inline core::Scenario city_disjoint() {
  core::Scenario sc;
  sc.name = "city_disjoint";
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 23;
  sc.seed = 23;
  sc.duration = units::Seconds{0.2};
  const auto plan = tag::plan_subcarrier_channels(4);
  for (std::size_t i = 0; i < 4; ++i) {
    core::ScenarioTag t;
    t.name = "sign" + std::to_string(i);
    t.subcarrier = plan[i].subcarrier;
    t.rate = tag::DataRate::k1600bps;
    t.num_bits = 128;
    t.packet_bits = 64;
    t.tag_power = units::Dbm{-32.0};
    t.distance_override = units::Feet{5.0};
    sc.tags.push_back(std::move(t));
  }
  sc.receivers.push_back(core::phone_listening_to(plan[0].subcarrier));
  sc.receivers.push_back(core::car_listening_to(plan[1].subcarrier));
  return sc;
}

/// Three tags sharing one channel: two overlap (physical collision), one is
/// staggered clear — the ALOHA story in a single deterministic trace.
inline core::Scenario aloha_burst() {
  core::Scenario sc;
  sc.name = "aloha_burst";
  sc.station.program.genre = audio::ProgramGenre::kSilence;
  sc.station.program.stereo = false;
  sc.station.seed = 31;
  sc.seed = 31;
  sc.duration = units::Seconds{0.3};
  const double starts[3] = {0.0, 0.02, 0.18};
  for (int i = 0; i < 3; ++i) {
    core::ScenarioTag t;
    t.name = "node" + std::to_string(i);
    t.rate = tag::DataRate::k1600bps;
    t.num_bits = 96;
    t.tag_power = units::Dbm{-25.0};
    t.distance_override = units::Feet{3.0};
    t.start = units::Seconds{starts[i]};
    sc.tags.push_back(std::move(t));
  }
  sc.receivers.push_back(core::phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

/// Two stations, two tags (paper sections 2/6: posters backscatter whichever
/// ambient signal is strongest): a west and an east station at opposite ends
/// of the scene, each geometrically captured by the tag nearest it; two
/// phones decode the two resulting backscatter channels out of one shared
/// spectrum.
inline core::Scenario two_station_city() {
  core::Scenario sc;
  sc.name = "two_station_city";
  sc.seed = 37;
  sc.duration = units::Seconds{0.25};

  core::ScenarioStation west;
  west.name = "west-news";
  west.config.program.genre = audio::ProgramGenre::kNews;
  west.config.program.stereo = false;
  west.config.seed = 37;
  west.offset = units::Hertz{0.0};
  west.power = units::Dbm{-28.0};
  west.position = core::ScenePosition{-60.0, 0.0};
  core::ScenarioStation east;
  east.name = "east-pop";
  east.config.program.genre = audio::ProgramGenre::kPop;
  east.config.program.stereo = false;
  east.config.seed = 38;
  east.offset = units::Hertz{800e3};
  east.power = units::Dbm{-30.0};
  east.position = core::ScenePosition{60.0, 0.0};
  sc.stations = {west, east};

  core::ScenarioTag poster_w;
  poster_w.name = "west-poster";
  poster_w.subcarrier.shift = units::Hertz{600e3};  // west channel: 0 + 600 kHz
  poster_w.rate = tag::DataRate::k1600bps;
  poster_w.num_bits = 192;
  poster_w.packet_bits = 96;
  poster_w.position = {-10.0, 0.0};
  core::ScenarioTag poster_e;
  poster_e.name = "east-poster";
  poster_e.subcarrier.shift = units::Hertz{-600e3};  // east channel: 800 - 600 kHz
  poster_e.subcarrier.mode = tag::SubcarrierMode::kSingleSideband;
  poster_e.rate = tag::DataRate::k1600bps;
  poster_e.num_bits = 192;
  poster_e.packet_bits = 96;
  poster_e.position = {10.0, 0.0};
  sc.tags = {poster_w, poster_e};

  core::ScenarioReceiver phone_w = core::phone_listening_to(poster_w.subcarrier);
  phone_w.name = "phone-west";
  phone_w.position = {-10.0, 1.5};
  core::ScenarioReceiver phone_e;
  phone_e.name = "phone-east";
  phone_e.tune_offset = units::Hertz{east.offset.raw() + poster_e.subcarrier.shift.raw()};
  phone_e.position = {10.0, 1.5};
  sc.receivers = {phone_w, phone_e};
  return sc;
}

/// One tag walking between two stations on a segmented timeline (paper
/// section 8's mobility story): the tag starts west-side backscattering the
/// west station, crosses the midpoint mid-run, and the per-segment
/// selected_station record flips — the handoff this trace pins down. The
/// burst goes out early (while still west-selected) so the link also stays
/// decodable.
inline core::Scenario mobile_handoff() {
  core::Scenario sc;
  sc.name = "mobile_handoff";
  sc.seed = 53;
  sc.duration = units::Seconds{0.4};
  sc.timeline.segment = units::Seconds{0.1};  // 0.48 s total -> 5 segments

  core::ScenarioStation west;
  west.name = "west-news";
  west.config.program.genre = audio::ProgramGenre::kNews;
  west.config.program.stereo = false;
  west.config.seed = 53;
  west.offset = units::Hertz{0.0};
  west.power = units::Dbm{-28.0};
  west.position = core::ScenePosition{-60.0, 0.0};
  core::ScenarioStation east;
  east.name = "east-pop";
  east.config.program.genre = audio::ProgramGenre::kPop;
  east.config.program.stereo = false;
  east.config.seed = 54;
  east.offset = units::Hertz{800e3};
  east.power = units::Dbm{-30.0};
  east.position = core::ScenePosition{60.0, 0.0};
  sc.stations = {west, east};

  core::ScenarioTag walker;
  walker.name = "walker";
  walker.subcarrier.shift = units::Hertz{600e3};
  walker.rate = tag::DataRate::k1600bps;
  walker.num_bits = 128;
  walker.packet_bits = 64;
  walker.position = {-20.0, 0.0};
  walker.waypoints = {{20.0, 0.0}};  // west side to east side
  walker.distance_override = units::Feet{4.0};  // constant link, moving selection
  walker.start = units::Seconds{0.0};
  sc.tags = {walker};

  core::ScenarioReceiver phone =
      core::phone_listening_to(walker.subcarrier);
  phone.name = "phone";
  sc.receivers = {phone};
  return sc;
}

/// The RDS data plane in one deterministic trace (paper sections 4.2 and 8):
/// a city station broadcasting its PS name on the 57 kHz subcarrier, a
/// poster pushing a RadioText ad over its backscatter channel, and an FSK
/// neighbor on a disjoint channel — the RDS tag's BLER rides the trace's
/// `ber` field, so a decoder or engine regression that degrades the data
/// plane moves a committed number.
inline core::Scenario rds_city() {
  core::Scenario sc;
  sc.name = "rds_city";
  sc.seed = 59;
  sc.duration = units::Seconds{0.3};
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 59;
  sc.station.rds_level = 0.05;
  sc.station.rds_ps_name = "GOLDENFM";

  const auto plan = tag::plan_subcarrier_channels(2);
  core::ScenarioTag ad;
  ad.name = "ad-poster";
  ad.subcarrier = plan[0].subcarrier;
  ad.rds_radiotext = "RDS CITY";  // 3 groups, ~0.26 s burst
  ad.tag_power = units::Dbm{-25.0};
  ad.distance_override = units::Feet{4.0};
  core::ScenarioTag sign;
  sign.name = "fsk-sign";
  sign.subcarrier = plan[1].subcarrier;
  sign.rate = tag::DataRate::k1600bps;
  sign.num_bits = 128;
  sign.packet_bits = 64;
  sign.tag_power = units::Dbm{-25.0};
  sign.distance_override = units::Feet{5.0};
  sc.tags = {ad, sign};

  sc.receivers.push_back(core::phone_listening_to(plan[0].subcarrier));
  sc.receivers.push_back(core::phone_listening_to(plan[1].subcarrier));
  return sc;
}

}  // namespace fmbs::golden
