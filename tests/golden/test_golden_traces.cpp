// Golden-trace regression harness: five representative multi-tag scenarios
// (including a two-station city scene and a mobile handoff on a segmented
// timeline) run end-to-end through the ScenarioEngine at fixed seeds; their
// decoded outcomes (per-tag BER / PER / goodput, aggregate throughput, and
// per-segment station selection where the timeline is segmented) are diffed
// against small JSON traces committed under tests/golden/traces/.
//
// Refreshing the baselines after an intentional behavior change:
//
//   ./build/golden_test_golden_traces --update-golden
//   # or: FMBS_UPDATE_GOLDEN=1 ctest -L golden
//
// rewrites the trace files in the source tree (FMBS_GOLDEN_DIR); commit the
// diff alongside the change that explains it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "golden_io.h"
#include "tag/channel_plan.h"

#ifndef FMBS_GOLDEN_DIR
#error "FMBS_GOLDEN_DIR must point at tests/golden (set by CMakeLists.txt)"
#endif

namespace fmbs::golden {
namespace {

bool g_update_golden = false;

std::string trace_path(const std::string& name) {
  return std::string(FMBS_GOLDEN_DIR) + "/traces/" + name + ".json";
}

// ---- The three reference scenarios -----------------------------------------

/// One poster tag, one phone: the paper's basic deployment, clean link.
core::Scenario solo_poster() {
  core::Scenario sc;
  sc.name = "solo_poster";
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 21;
  sc.seed = 21;
  sc.duration_seconds = 0.25;
  core::ScenarioTag t;
  t.name = "poster";
  t.rate = tag::DataRate::k1600bps;
  t.num_bits = 320;
  t.packet_bits = 80;
  t.tag_power_dbm = -25.0;
  t.distance_override_feet = 4.0;
  sc.tags.push_back(std::move(t));
  sc.receivers.push_back(core::phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

/// Four tags on four planned disjoint channels; a phone and a car listen to
/// two of them (the others transmit as pure adjacent-channel neighbors).
core::Scenario city_disjoint() {
  core::Scenario sc;
  sc.name = "city_disjoint";
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 23;
  sc.seed = 23;
  sc.duration_seconds = 0.2;
  const auto plan = tag::plan_subcarrier_channels(4);
  for (std::size_t i = 0; i < 4; ++i) {
    core::ScenarioTag t;
    t.name = "sign" + std::to_string(i);
    t.subcarrier = plan[i].subcarrier;
    t.rate = tag::DataRate::k1600bps;
    t.num_bits = 128;
    t.packet_bits = 64;
    t.tag_power_dbm = -32.0;
    t.distance_override_feet = 5.0;
    sc.tags.push_back(std::move(t));
  }
  sc.receivers.push_back(core::phone_listening_to(plan[0].subcarrier));
  sc.receivers.push_back(core::car_listening_to(plan[1].subcarrier));
  return sc;
}

/// Three tags sharing one channel: two overlap (physical collision), one is
/// staggered clear — the ALOHA story in a single deterministic trace.
core::Scenario aloha_burst() {
  core::Scenario sc;
  sc.name = "aloha_burst";
  sc.station.program.genre = audio::ProgramGenre::kSilence;
  sc.station.program.stereo = false;
  sc.station.seed = 31;
  sc.seed = 31;
  sc.duration_seconds = 0.3;
  const double starts[3] = {0.0, 0.02, 0.18};
  for (int i = 0; i < 3; ++i) {
    core::ScenarioTag t;
    t.name = "node" + std::to_string(i);
    t.rate = tag::DataRate::k1600bps;
    t.num_bits = 96;
    t.tag_power_dbm = -25.0;
    t.distance_override_feet = 3.0;
    t.start_seconds = starts[i];
    sc.tags.push_back(std::move(t));
  }
  sc.receivers.push_back(core::phone_listening_to(sc.tags[0].subcarrier));
  return sc;
}

/// Two stations, two tags (paper sections 2/6: posters backscatter whichever
/// ambient signal is strongest): a west and an east station at opposite ends
/// of the scene, each geometrically captured by the tag nearest it; two
/// phones decode the two resulting backscatter channels out of one shared
/// spectrum.
core::Scenario two_station_city() {
  core::Scenario sc;
  sc.name = "two_station_city";
  sc.seed = 37;
  sc.duration_seconds = 0.25;

  core::ScenarioStation west;
  west.name = "west-news";
  west.config.program.genre = audio::ProgramGenre::kNews;
  west.config.program.stereo = false;
  west.config.seed = 37;
  west.offset_hz = 0.0;
  west.power_dbm = -28.0;
  west.position = core::ScenePosition{-60.0, 0.0};
  core::ScenarioStation east;
  east.name = "east-pop";
  east.config.program.genre = audio::ProgramGenre::kPop;
  east.config.program.stereo = false;
  east.config.seed = 38;
  east.offset_hz = 800e3;
  east.power_dbm = -30.0;
  east.position = core::ScenePosition{60.0, 0.0};
  sc.stations = {west, east};

  core::ScenarioTag poster_w;
  poster_w.name = "west-poster";
  poster_w.subcarrier.shift_hz = 600e3;  // west channel: 0 + 600 kHz
  poster_w.rate = tag::DataRate::k1600bps;
  poster_w.num_bits = 192;
  poster_w.packet_bits = 96;
  poster_w.position = {-10.0, 0.0};
  core::ScenarioTag poster_e;
  poster_e.name = "east-poster";
  poster_e.subcarrier.shift_hz = -600e3;  // east channel: 800 - 600 kHz
  poster_e.subcarrier.mode = tag::SubcarrierMode::kSingleSideband;
  poster_e.rate = tag::DataRate::k1600bps;
  poster_e.num_bits = 192;
  poster_e.packet_bits = 96;
  poster_e.position = {10.0, 0.0};
  sc.tags = {poster_w, poster_e};

  core::ScenarioReceiver phone_w = core::phone_listening_to(poster_w.subcarrier);
  phone_w.name = "phone-west";
  phone_w.position = {-10.0, 1.5};
  core::ScenarioReceiver phone_e;
  phone_e.name = "phone-east";
  phone_e.tune_offset_hz = east.offset_hz + poster_e.subcarrier.shift_hz;
  phone_e.position = {10.0, 1.5};
  sc.receivers = {phone_w, phone_e};
  return sc;
}

/// One tag walking between two stations on a segmented timeline (paper
/// section 8's mobility story): the tag starts west-side backscattering the
/// west station, crosses the midpoint mid-run, and the per-segment
/// selected_station record flips — the handoff this trace pins down. The
/// burst goes out early (while still west-selected) so the link also stays
/// decodable.
core::Scenario mobile_handoff() {
  core::Scenario sc;
  sc.name = "mobile_handoff";
  sc.seed = 53;
  sc.duration_seconds = 0.4;
  sc.timeline.segment_seconds = 0.1;  // 0.48 s total -> 5 segments

  core::ScenarioStation west;
  west.name = "west-news";
  west.config.program.genre = audio::ProgramGenre::kNews;
  west.config.program.stereo = false;
  west.config.seed = 53;
  west.offset_hz = 0.0;
  west.power_dbm = -28.0;
  west.position = core::ScenePosition{-60.0, 0.0};
  core::ScenarioStation east;
  east.name = "east-pop";
  east.config.program.genre = audio::ProgramGenre::kPop;
  east.config.program.stereo = false;
  east.config.seed = 54;
  east.offset_hz = 800e3;
  east.power_dbm = -30.0;
  east.position = core::ScenePosition{60.0, 0.0};
  sc.stations = {west, east};

  core::ScenarioTag walker;
  walker.name = "walker";
  walker.subcarrier.shift_hz = 600e3;
  walker.rate = tag::DataRate::k1600bps;
  walker.num_bits = 128;
  walker.packet_bits = 64;
  walker.position = {-20.0, 0.0};
  walker.waypoints = {{20.0, 0.0}};  // west side to east side
  walker.distance_override_feet = 4.0;  // constant link, moving selection
  walker.start_seconds = 0.0;
  sc.tags = {walker};

  core::ScenarioReceiver phone =
      core::phone_listening_to(walker.subcarrier);
  phone.name = "phone";
  sc.receivers = {phone};
  return sc;
}

/// The RDS data plane in one deterministic trace (paper sections 4.2 and 8):
/// a city station broadcasting its PS name on the 57 kHz subcarrier, a
/// poster pushing a RadioText ad over its backscatter channel, and an FSK
/// neighbor on a disjoint channel — the RDS tag's BLER rides the trace's
/// `ber` field, so a decoder or engine regression that degrades the data
/// plane moves a committed number.
core::Scenario rds_city() {
  core::Scenario sc;
  sc.name = "rds_city";
  sc.seed = 59;
  sc.duration_seconds = 0.3;
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 59;
  sc.station.rds_level = 0.05;
  sc.station.rds_ps_name = "GOLDENFM";

  const auto plan = tag::plan_subcarrier_channels(2);
  core::ScenarioTag ad;
  ad.name = "ad-poster";
  ad.subcarrier = plan[0].subcarrier;
  ad.rds_radiotext = "RDS CITY";  // 3 groups, ~0.26 s burst
  ad.tag_power_dbm = -25.0;
  ad.distance_override_feet = 4.0;
  core::ScenarioTag sign;
  sign.name = "fsk-sign";
  sign.subcarrier = plan[1].subcarrier;
  sign.rate = tag::DataRate::k1600bps;
  sign.num_bits = 128;
  sign.packet_bits = 64;
  sign.tag_power_dbm = -25.0;
  sign.distance_override_feet = 5.0;
  sc.tags = {ad, sign};

  sc.receivers.push_back(core::phone_listening_to(plan[0].subcarrier));
  sc.receivers.push_back(core::phone_listening_to(plan[1].subcarrier));
  return sc;
}

// ---- Diffing ----------------------------------------------------------------

/// Value-scaled tolerances, so a regenerated baseline carries its own
/// bands: clean metrics must stay clean, collision metrics may wobble with
/// platform libm differences without masking a real regression.
double ber_tolerance(double golden_ber) { return 0.03 + 0.5 * golden_ber; }
double per_tolerance(double) { return 0.3; }
double goodput_tolerance(double golden_bps) {
  return 25.0 + 0.1 * golden_bps;
}

void check_against_golden(const core::Scenario& scenario) {
  const core::ScenarioResult result =
      core::ScenarioEngine({.keep_captures = false}).run(scenario);
  const GoldenTrace actual = trace_from_result(scenario, result);
  const std::string path = trace_path(scenario.name);

  if (g_update_golden) {
    write_golden(path, actual);
    SUCCEED() << "updated " << path;
    return;
  }

  const std::optional<GoldenTrace> golden = read_golden(path);
  ASSERT_TRUE(golden.has_value())
      << path << " is missing — run with --update-golden to create it";
  ASSERT_EQ(golden->scenario, actual.scenario);
  EXPECT_EQ(golden->seed, actual.seed)
      << "scenario seed changed; update the golden trace intentionally";
  // Segment geometry is deterministic (no noise involved): the handoff
  // pattern must reproduce exactly.
  ASSERT_EQ(golden->segments.size(), actual.segments.size());
  for (std::size_t i = 0; i < golden->segments.size(); ++i) {
    EXPECT_NEAR(actual.segments[i].start_seconds,
                golden->segments[i].start_seconds, 1e-9) << i;
    EXPECT_EQ(actual.segments[i].selected_station,
              golden->segments[i].selected_station)
        << "segment " << i << ": the handoff pattern changed";
  }
  ASSERT_EQ(golden->tags.size(), actual.tags.size());
  for (std::size_t i = 0; i < golden->tags.size(); ++i) {
    const GoldenTag& want = golden->tags[i];
    const GoldenTag& got = actual.tags[i];
    EXPECT_EQ(want.name, got.name) << i;
    EXPECT_EQ(want.bits, got.bits) << want.name;
    EXPECT_NEAR(got.ber, want.ber, ber_tolerance(want.ber)) << want.name;
    EXPECT_NEAR(got.per, want.per, per_tolerance(want.per)) << want.name;
    EXPECT_NEAR(got.goodput_bps, want.goodput_bps,
                goodput_tolerance(want.goodput_bps))
        << want.name;
  }
  EXPECT_NEAR(actual.aggregate_goodput_bps, golden->aggregate_goodput_bps,
              goodput_tolerance(golden->aggregate_goodput_bps));
}

TEST(GoldenTraces, SoloPoster) { check_against_golden(solo_poster()); }
TEST(GoldenTraces, CityDisjoint) { check_against_golden(city_disjoint()); }
TEST(GoldenTraces, AlohaBurst) { check_against_golden(aloha_burst()); }
TEST(GoldenTraces, TwoStationCity) { check_against_golden(two_station_city()); }

TEST(GoldenTraces, RdsCity) {
  const core::Scenario sc = rds_city();
  check_against_golden(sc);
  // Beyond the trace diff: the RDS link itself must stay clean end to end —
  // a trace whose baseline drifted to BLER 1.0 would still "match".
  const core::ScenarioResult result =
      core::ScenarioEngine({.keep_captures = false}).run(sc);
  ASSERT_TRUE(result.best_per_tag[0].rds.has_value());
  EXPECT_EQ(result.best_per_tag[0].rds->radiotext, "RDS CITY");
}

TEST(GoldenTraces, MobileHandoff) {
  const core::Scenario sc = mobile_handoff();
  check_against_golden(sc);
  // Beyond the trace diff: the committed baseline itself must show a
  // mid-run handoff, or the trace has stopped testing what it is for.
  const std::optional<GoldenTrace> golden =
      read_golden(trace_path(sc.name));
  ASSERT_TRUE(golden.has_value());
  ASSERT_GE(golden->segments.size(), 2U);
  EXPECT_NE(golden->segments.front().selected_station,
            golden->segments.back().selected_station)
      << "mobile_handoff's selected_station must flip mid-run";
}

// The writer and reader must round-trip exactly (they are the only two
// parties to the trace format).
TEST(GoldenTraces, IoRoundTrips) {
  GoldenTrace trace;
  trace.scenario = "roundtrip";
  trace.seed = 17;
  trace.aggregate_goodput_bps = 1234.5;
  trace.segments.push_back({0.0, {0, 1}});
  trace.segments.push_back({0.1, {1, 1}});
  trace.tags.push_back({"a \"quoted\" \\ name", 0.015625, 0.25, 320.0, 2, 128});
  trace.tags.push_back({"b", 0.0, 0.0, 640.0, 0, 128});
  const std::string path = testing::TempDir() + "fmbs_golden_roundtrip.json";
  write_golden(path, trace);
  const auto back = read_golden(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->scenario, trace.scenario);
  EXPECT_EQ(back->seed, trace.seed);
  EXPECT_DOUBLE_EQ(back->aggregate_goodput_bps, trace.aggregate_goodput_bps);
  ASSERT_EQ(back->segments.size(), 2U);
  EXPECT_DOUBLE_EQ(back->segments[1].start_seconds, 0.1);
  EXPECT_EQ(back->segments[0].selected_station, (std::vector<int>{0, 1}));
  EXPECT_EQ(back->segments[1].selected_station, (std::vector<int>{1, 1}));
  ASSERT_EQ(back->tags.size(), 2U);
  EXPECT_EQ(back->tags[0].name, "a \"quoted\" \\ name");
  EXPECT_DOUBLE_EQ(back->tags[0].ber, 0.015625);
  EXPECT_EQ(back->tags[0].bit_errors, 2U);
  EXPECT_EQ(back->tags[1].bits, 128U);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fmbs::golden

// Custom main so the binary understands --update-golden (the env var
// FMBS_UPDATE_GOLDEN=1 works too, for ctest-driven refreshes).
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      fmbs::golden::g_update_golden = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  if (const char* env = std::getenv("FMBS_UPDATE_GOLDEN");
      env != nullptr && std::string(env) == "1") {
    fmbs::golden::g_update_golden = true;
  }
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
