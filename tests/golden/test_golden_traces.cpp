// Golden-trace regression harness: five representative multi-tag scenarios
// (including a two-station city scene and a mobile handoff on a segmented
// timeline) run end-to-end through the ScenarioEngine at fixed seeds; their
// decoded outcomes (per-tag BER / PER / goodput, aggregate throughput, and
// per-segment station selection where the timeline is segmented) are diffed
// against small JSON traces committed under tests/golden/traces/.
//
// Refreshing the baselines after an intentional behavior change:
//
//   ./build/golden_test_golden_traces --update-golden
//   # or: FMBS_UPDATE_GOLDEN=1 ctest -L golden
//
// rewrites the trace files in the source tree (FMBS_GOLDEN_DIR); commit the
// diff alongside the change that explains it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "golden_io.h"
#include "golden_scenarios.h"

#ifndef FMBS_GOLDEN_DIR
#error "FMBS_GOLDEN_DIR must point at tests/golden (set by CMakeLists.txt)"
#endif

namespace fmbs::golden {
namespace {

bool g_update_golden = false;

std::string trace_path(const std::string& name) {
  return std::string(FMBS_GOLDEN_DIR) + "/traces/" + name + ".json";
}

// ---- Diffing ----------------------------------------------------------------

/// Value-scaled tolerances, so a regenerated baseline carries its own
/// bands: clean metrics must stay clean, collision metrics may wobble with
/// platform libm differences without masking a real regression.
double ber_tolerance(double golden_ber) { return 0.03 + 0.5 * golden_ber; }
double per_tolerance(double) { return 0.3; }
double goodput_tolerance(double golden_bps) {
  return 25.0 + 0.1 * golden_bps;
}

void check_against_golden(const core::Scenario& scenario) {
  const core::ScenarioResult result =
      core::ScenarioEngine({.keep_captures = false}).run(scenario);
  const GoldenTrace actual = trace_from_result(scenario, result);
  const std::string path = trace_path(scenario.name);

  if (g_update_golden) {
    write_golden(path, actual);
    SUCCEED() << "updated " << path;
    return;
  }

  const std::optional<GoldenTrace> golden = read_golden(path);
  ASSERT_TRUE(golden.has_value())
      << path << " is missing — run with --update-golden to create it";
  ASSERT_EQ(golden->scenario, actual.scenario);
  EXPECT_EQ(golden->seed, actual.seed)
      << "scenario seed changed; update the golden trace intentionally";
  // Segment geometry is deterministic (no noise involved): the handoff
  // pattern must reproduce exactly.
  ASSERT_EQ(golden->segments.size(), actual.segments.size());
  for (std::size_t i = 0; i < golden->segments.size(); ++i) {
    EXPECT_NEAR(actual.segments[i].start_seconds,
                golden->segments[i].start_seconds, 1e-9) << i;
    EXPECT_EQ(actual.segments[i].selected_station,
              golden->segments[i].selected_station)
        << "segment " << i << ": the handoff pattern changed";
  }
  ASSERT_EQ(golden->tags.size(), actual.tags.size());
  for (std::size_t i = 0; i < golden->tags.size(); ++i) {
    const GoldenTag& want = golden->tags[i];
    const GoldenTag& got = actual.tags[i];
    EXPECT_EQ(want.name, got.name) << i;
    EXPECT_EQ(want.bits, got.bits) << want.name;
    EXPECT_NEAR(got.ber, want.ber, ber_tolerance(want.ber)) << want.name;
    EXPECT_NEAR(got.per, want.per, per_tolerance(want.per)) << want.name;
    EXPECT_NEAR(got.goodput_bps, want.goodput_bps,
                goodput_tolerance(want.goodput_bps))
        << want.name;
  }
  EXPECT_NEAR(actual.aggregate_goodput_bps, golden->aggregate_goodput_bps,
              goodput_tolerance(golden->aggregate_goodput_bps));
}

TEST(GoldenTraces, SoloPoster) { check_against_golden(solo_poster()); }
TEST(GoldenTraces, CityDisjoint) { check_against_golden(city_disjoint()); }
TEST(GoldenTraces, AlohaBurst) { check_against_golden(aloha_burst()); }
TEST(GoldenTraces, TwoStationCity) { check_against_golden(two_station_city()); }

TEST(GoldenTraces, RdsCity) {
  const core::Scenario sc = rds_city();
  check_against_golden(sc);
  // Beyond the trace diff: the RDS link itself must stay clean end to end —
  // a trace whose baseline drifted to BLER 1.0 would still "match".
  const core::ScenarioResult result =
      core::ScenarioEngine({.keep_captures = false}).run(sc);
  ASSERT_TRUE(result.best_per_tag[0].rds.has_value());
  EXPECT_EQ(result.best_per_tag[0].rds->radiotext, "RDS CITY");
}

TEST(GoldenTraces, MobileHandoff) {
  const core::Scenario sc = mobile_handoff();
  check_against_golden(sc);
  // Beyond the trace diff: the committed baseline itself must show a
  // mid-run handoff, or the trace has stopped testing what it is for.
  const std::optional<GoldenTrace> golden =
      read_golden(trace_path(sc.name));
  ASSERT_TRUE(golden.has_value());
  ASSERT_GE(golden->segments.size(), 2U);
  EXPECT_NE(golden->segments.front().selected_station,
            golden->segments.back().selected_station)
      << "mobile_handoff's selected_station must flip mid-run";
}

// The writer and reader must round-trip exactly (they are the only two
// parties to the trace format).
TEST(GoldenTraces, IoRoundTrips) {
  GoldenTrace trace;
  trace.scenario = "roundtrip";
  trace.seed = 17;
  trace.aggregate_goodput_bps = 1234.5;
  trace.segments.push_back({0.0, {0, 1}});
  trace.segments.push_back({0.1, {1, 1}});
  trace.tags.push_back({"a \"quoted\" \\ name", 0.015625, 0.25, 320.0, 2, 128});
  trace.tags.push_back({"b", 0.0, 0.0, 640.0, 0, 128});
  const std::string path = testing::TempDir() + "fmbs_golden_roundtrip.json";
  write_golden(path, trace);
  const auto back = read_golden(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->scenario, trace.scenario);
  EXPECT_EQ(back->seed, trace.seed);
  EXPECT_DOUBLE_EQ(back->aggregate_goodput_bps, trace.aggregate_goodput_bps);
  ASSERT_EQ(back->segments.size(), 2U);
  EXPECT_DOUBLE_EQ(back->segments[1].start_seconds, 0.1);
  EXPECT_EQ(back->segments[0].selected_station, (std::vector<int>{0, 1}));
  EXPECT_EQ(back->segments[1].selected_station, (std::vector<int>{1, 1}));
  ASSERT_EQ(back->tags.size(), 2U);
  EXPECT_EQ(back->tags[0].name, "a \"quoted\" \\ name");
  EXPECT_DOUBLE_EQ(back->tags[0].ber, 0.015625);
  EXPECT_EQ(back->tags[0].bit_errors, 2U);
  EXPECT_EQ(back->tags[1].bits, 128U);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fmbs::golden

// Custom main so the binary understands --update-golden (the env var
// FMBS_UPDATE_GOLDEN=1 works too, for ctest-driven refreshes).
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      fmbs::golden::g_update_golden = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  if (const char* env = std::getenv("FMBS_UPDATE_GOLDEN");
      env != nullptr && std::string(env) == "1") {
    fmbs::golden::g_update_golden = true;
  }
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
