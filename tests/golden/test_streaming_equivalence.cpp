// Streaming-vs-batch equivalence over the six golden scenarios: the
// producer/consumer streaming pipeline (core::StreamingEngine) must
// reproduce the batch engine's decoded outcomes *exactly* — station
// selection and handoffs, MAC schedules, every link's bit errors, PER, RDS
// text and goodput, at 1, 2 and 8 consumer threads. The streaming engine
// re-renders the very same scene through the very same DSP state machines,
// just block by block with bounded buffering, so the comparison is
// EXPECT_EQ, not EXPECT_NEAR: a single flipped bit anywhere means some
// streaming decoder's state diverged from its one-shot twin and is a bug.
#include <gtest/gtest.h>

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "core/streaming.h"
#include "golden_scenarios.h"

namespace fmbs::golden {
namespace {

void expect_same_link(const core::TagLinkReport& stream,
                      const core::TagLinkReport& batch,
                      const std::string& where) {
  EXPECT_EQ(stream.tag_index, batch.tag_index) << where;
  EXPECT_EQ(stream.receiver_index, batch.receiver_index) << where;
  EXPECT_EQ(stream.burst.ber.bit_errors, batch.burst.ber.bit_errors) << where;
  EXPECT_EQ(stream.burst.ber.bits_compared, batch.burst.ber.bits_compared)
      << where;
  EXPECT_EQ(stream.burst.ber.ber, batch.burst.ber.ber) << where;
  EXPECT_EQ(stream.burst.packets, batch.burst.packets) << where;
  EXPECT_EQ(stream.burst.packets_ok, batch.burst.packets_ok) << where;
  EXPECT_EQ(stream.burst.bits_delivered, batch.burst.bits_delivered) << where;
  EXPECT_EQ(stream.burst.per, batch.burst.per) << where;
  EXPECT_EQ(stream.burst.mean_confidence, batch.burst.mean_confidence)
      << where;
  EXPECT_EQ(stream.backscatter_rx_power_dbm, batch.backscatter_rx_power_dbm)
      << where;
  EXPECT_EQ(stream.goodput_bps, batch.goodput_bps) << where;
  ASSERT_EQ(stream.rds.has_value(), batch.rds.has_value()) << where;
  if (stream.rds.has_value()) {
    EXPECT_EQ(stream.rds->synced, batch.rds->synced) << where;
    EXPECT_EQ(stream.rds->blocks_ok, batch.rds->blocks_ok) << where;
    EXPECT_EQ(stream.rds->blocks_failed, batch.rds->blocks_failed) << where;
    EXPECT_EQ(stream.rds->bler, batch.rds->bler) << where;
    EXPECT_EQ(stream.rds->ps_name, batch.rds->ps_name) << where;
    EXPECT_EQ(stream.rds->radiotext, batch.rds->radiotext) << where;
  }
}

void expect_equivalent(const core::Scenario& sc, std::size_t consumer_threads) {
  SCOPED_TRACE(sc.name + " @" + std::to_string(consumer_threads) + " threads");
  const core::ScenarioResult batch =
      core::ScenarioEngine({.keep_captures = false}).run(sc);
  core::StreamingConfig cfg;
  cfg.consumer_threads = consumer_threads;
  const core::ScenarioResult stream = core::StreamingEngine(cfg).run(sc);

  // Identical demand-driven pruning decisions (shared resolve_scene_pruning).
  EXPECT_EQ(stream.scene.stations_total, batch.scene.stations_total);
  EXPECT_EQ(stream.scene.stations_rendered, batch.scene.stations_rendered);
  EXPECT_EQ(stream.scene.tags_total, batch.scene.tags_total);
  EXPECT_EQ(stream.scene.tags_rendered, batch.scene.tags_rendered);
  EXPECT_EQ(stream.scene.scene_scratch_bytes, batch.scene.scene_scratch_bytes);
  // Only the streaming engine reports bounded buffering; batch has none.
  EXPECT_GT(stream.scene.streaming_peak_buffer_bytes, 0U);
  EXPECT_EQ(batch.scene.streaming_peak_buffer_bytes, 0U);

  // Geometry and handoffs.
  EXPECT_EQ(stream.selected_station, batch.selected_station);
  ASSERT_EQ(stream.segments.size(), batch.segments.size());
  for (std::size_t k = 0; k < stream.segments.size(); ++k) {
    EXPECT_EQ(stream.segments[k].start_seconds,
              batch.segments[k].start_seconds) << k;
    EXPECT_EQ(stream.segments[k].end_seconds, batch.segments[k].end_seconds)
        << k;
    EXPECT_EQ(stream.segments[k].selected_station,
              batch.segments[k].selected_station) << k;
  }

  // MAC outcomes come from the shared plan; they must agree to the bit.
  ASSERT_EQ(stream.mac.size(), batch.mac.size());
  for (std::size_t t = 0; t < stream.mac.size(); ++t) {
    EXPECT_EQ(stream.mac[t].transmitted, batch.mac[t].transmitted) << t;
    EXPECT_EQ(stream.mac[t].deferrals, batch.mac[t].deferrals) << t;
    EXPECT_EQ(stream.mac[t].start_seconds, batch.mac[t].start_seconds) << t;
    EXPECT_EQ(stream.mac[t].last_sensed_dbm, batch.mac[t].last_sensed_dbm)
        << t;
  }

  // Every decoded link, at every receiver, in the same order.
  ASSERT_EQ(stream.receivers.size(), batch.receivers.size());
  for (std::size_t r = 0; r < stream.receivers.size(); ++r) {
    const auto& sr = stream.receivers[r];
    const auto& br = batch.receivers[r];
    ASSERT_EQ(sr.links.size(), br.links.size()) << "receiver " << r;
    for (std::size_t l = 0; l < sr.links.size(); ++l) {
      expect_same_link(sr.links[l], br.links[l],
                       "receiver " + std::to_string(r) + " link " +
                           std::to_string(l));
    }
    ASSERT_EQ(sr.station_rds.has_value(), br.station_rds.has_value())
        << "receiver " << r;
    if (sr.station_rds.has_value()) {
      EXPECT_EQ(sr.station_rds->synced, br.station_rds->synced) << r;
      EXPECT_EQ(sr.station_rds->blocks_ok, br.station_rds->blocks_ok) << r;
      EXPECT_EQ(sr.station_rds->bler, br.station_rds->bler) << r;
      EXPECT_EQ(sr.station_rds->ps_name, br.station_rds->ps_name) << r;
      EXPECT_EQ(sr.station_rds->radiotext, br.station_rds->radiotext) << r;
    }
  }

  // Best-link selection and the headline aggregate.
  ASSERT_EQ(stream.best_per_tag.size(), batch.best_per_tag.size());
  for (std::size_t i = 0; i < stream.best_per_tag.size(); ++i) {
    expect_same_link(stream.best_per_tag[i], batch.best_per_tag[i],
                     "best_per_tag " + std::to_string(i));
  }
  EXPECT_EQ(stream.aggregate_goodput_bps, batch.aggregate_goodput_bps);
}

void expect_equivalent_all_thread_counts(const core::Scenario& sc) {
  expect_equivalent(sc, 1);
  expect_equivalent(sc, 2);
  expect_equivalent(sc, 8);
}

TEST(StreamingEquivalence, SoloPoster) {
  expect_equivalent_all_thread_counts(solo_poster());
}
TEST(StreamingEquivalence, CityDisjoint) {
  expect_equivalent_all_thread_counts(city_disjoint());
}
TEST(StreamingEquivalence, AlohaBurst) {
  expect_equivalent_all_thread_counts(aloha_burst());
}
TEST(StreamingEquivalence, TwoStationCity) {
  expect_equivalent_all_thread_counts(two_station_city());
}
TEST(StreamingEquivalence, MobileHandoff) {
  expect_equivalent_all_thread_counts(mobile_handoff());
}
TEST(StreamingEquivalence, RdsCity) {
  expect_equivalent_all_thread_counts(rds_city());
}

// Live events must agree with the assembled result: every decoded link
// surfaces exactly once through on_link, and the event payload carries the
// same scores the final report does.
TEST(StreamingEquivalence, LiveEventsMatchAssembledResult) {
  const core::Scenario sc = city_disjoint();
  std::vector<core::StreamingLinkEvent> events;
  std::mutex mu;
  core::StreamingConfig cfg;
  cfg.consumer_threads = 2;
  cfg.on_link = [&](const core::StreamingLinkEvent& ev) {
    const std::lock_guard<std::mutex> lock(mu);
    events.push_back(ev);
  };
  const core::ScenarioResult result = core::StreamingEngine(cfg).run(sc);

  std::size_t total_links = 0;
  std::size_t station_rds = 0;
  for (const auto& rr : result.receivers) {
    total_links += rr.links.size();
    station_rds += rr.station_rds.has_value() ? 1U : 0U;
  }
  EXPECT_EQ(events.size(), total_links + station_rds);
  for (const auto& ev : events) {
    EXPECT_GT(ev.stream_seconds, 0.0);
    if (ev.kind == core::StreamingLinkEvent::Kind::kStationRds) {
      ASSERT_TRUE(ev.link.rds.has_value());
      const auto& rr = result.receivers.at(ev.receiver_index);
      ASSERT_TRUE(rr.station_rds.has_value());
      EXPECT_EQ(ev.link.rds->ps_name, rr.station_rds->ps_name);
      continue;
    }
    // Find the matching assembled link.
    const auto& rr = result.receivers.at(ev.receiver_index);
    bool found = false;
    for (const auto& link : rr.links) {
      if (link.tag_index != ev.tag_index) continue;
      const bool is_rds = link.rds.has_value();
      if (is_rds != (ev.kind == core::StreamingLinkEvent::Kind::kRdsBurst)) {
        continue;
      }
      found = true;
      EXPECT_EQ(ev.link.burst.ber.ber, link.burst.ber.ber);
      EXPECT_EQ(ev.link.goodput_bps, link.goodput_bps);
      break;
    }
    EXPECT_TRUE(found) << "event for tag " << ev.tag_index << " receiver "
                       << ev.receiver_index << " has no assembled link";
  }
}

}  // namespace
}  // namespace fmbs::golden
