// Shared helper for the repo's acceptance property: a sweep's results are
// bit-identical at any thread count. Every suite that asserts 1/2/8-thread
// identity goes through this header instead of hand-rolling the
// run-serial/run-parallel/compare scaffold (which had drifted into three
// copies before this existed).
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <initializer_list>
#include <utility>
#include <vector>

namespace fmbs::test {

/// The canonical thread counts: serial reference, the smallest parallel
/// case, and more workers than this CI box has cores (oversubscription
/// shakes out scheduling-order dependence).
inline constexpr std::initializer_list<std::size_t> kIdentityThreadCounts = {
    1, 2, 8};

/// Runs `run_at(threads)` once per entry of `thread_counts` and invokes
/// `compare(reference, other, threads)` for every non-reference count, where
/// `reference` is the first run. `compare` should EXPECT_EQ the
/// result fields that must match bit-for-bit — exact equality, no
/// tolerances: the contract is identical bits, not close ones.
template <typename RunAt, typename Compare>
void ExpectBitIdenticalAcrossThreads(
    RunAt&& run_at, Compare&& compare,
    std::initializer_list<std::size_t> thread_counts = kIdentityThreadCounts) {
  auto it = thread_counts.begin();
  ASSERT_NE(it, thread_counts.end()) << "no thread counts to compare";
  const auto reference = run_at(*it);
  for (++it; it != thread_counts.end(); ++it) {
    const auto other = run_at(*it);
    compare(reference, other, *it);
  }
}

}  // namespace fmbs::test
