#include "fm/rds.h"

#include <gtest/gtest.h>

#include <random>

#include "audio/tone.h"
#include "fm/mpx.h"

namespace fmbs::fm {
namespace {

TEST(RdsCheckword, MatchesPolynomialDivision) {
  // Hand-checked property: checkword of 0 is 0; linearity over GF(2).
  EXPECT_EQ(rds_checkword(0x0000), 0x0000);
  const std::uint16_t a = 0x1234, b = 0x0F0F;
  EXPECT_EQ(rds_checkword(a ^ b),
            static_cast<std::uint16_t>(rds_checkword(a) ^ rds_checkword(b)));
}

TEST(RdsCheckword, DetectsSingleBitErrors) {
  const std::uint16_t info = 0xBEEF;
  const std::uint16_t check = rds_checkword(info);
  for (int bit = 0; bit < 16; ++bit) {
    const auto corrupted = static_cast<std::uint16_t>(info ^ (1U << bit));
    EXPECT_NE(rds_checkword(corrupted), check) << "bit " << bit;
  }
}

TEST(RdsGroups, PsNameEncodedAcrossFourGroups) {
  const auto groups = make_ps_groups("KUOW FM ");
  ASSERT_EQ(groups.size(), 4U);
  EXPECT_EQ(groups[0].blocks[3], static_cast<std::uint16_t>(('K' << 8) | 'U'));
  EXPECT_EQ(groups[3].blocks[3], static_cast<std::uint16_t>(('M' << 8) | ' '));
  // Segment addresses 0..3 in block B.
  for (std::uint16_t i = 0; i < 4; ++i) {
    EXPECT_EQ(groups[i].blocks[1] & 0x3, i);
  }
}

TEST(RdsGroups, SerializeLength) {
  const auto groups = make_ps_groups("TESTING!");
  const auto bits = serialize_groups(groups);
  EXPECT_EQ(bits.size(), 4U * 4U * 26U);
}

TEST(RdsModulate, EnergyAt57k) {
  const auto bits = serialize_groups(make_ps_groups("ABCDEFGH"));
  const auto wave = modulate_rds_subcarrier(bits, 240000, kMpxRate);
  ASSERT_EQ(wave.size(), 240000U);
  double p57 = 0.0, p30 = 0.0;
  // Rough band powers via Goertzel-free accumulation: use correlation with
  // the carrier bands through simple energy windows — delegated to decode
  // tests; here just check the waveform is bounded and nonzero.
  for (const float v : wave) {
    EXPECT_LE(std::abs(v), 1.001F);
    p57 += std::abs(v);
  }
  EXPECT_GT(p57, 0.0);
  (void)p30;
}

TEST(RdsEndToEnd, DecodesPsNameFromCleanMpx) {
  audio::StereoBuffer prog(std::vector<float>(96000, 0.0F),
                           std::vector<float>(96000, 0.0F), kAudioRate);
  MpxConfig cfg;
  cfg.rds_level = 0.1;
  const auto bits = serialize_groups(make_ps_groups("FMBSCTTR"));
  const auto mpx = compose_mpx(prog, cfg, bits);
  const auto result = decode_rds(mpx, kMpxRate);
  EXPECT_GT(result.bits_decoded, 100U);
  ASSERT_FALSE(result.groups.empty()) << "no block-synced groups";
  EXPECT_EQ(result.ps_name, "FMBSCTTR");
}

TEST(RdsEndToEnd, DecodesThroughProgramAudio) {
  // RDS must coexist with program content in the same MPX.
  const auto l = audio::make_tone(1000.0, 0.5, 2.0, kAudioRate);
  const auto r = audio::make_tone(2000.0, 0.5, 2.0, kAudioRate);
  audio::StereoBuffer prog(l.samples, r.samples, kAudioRate);
  MpxConfig cfg;
  cfg.rds_level = 0.08;
  const auto bits = serialize_groups(make_ps_groups("SEATTLE!"));
  const auto mpx = compose_mpx(prog, cfg, bits);
  const auto result = decode_rds(mpx, kMpxRate);
  EXPECT_EQ(result.ps_name, "SEATTLE!");
}

TEST(RdsEndToEnd, SurvivesModerateNoise) {
  audio::StereoBuffer prog(std::vector<float>(120000, 0.0F),
                           std::vector<float>(120000, 0.0F), kAudioRate);
  MpxConfig cfg;
  cfg.rds_level = 0.1;
  const auto bits = serialize_groups(make_ps_groups("NOISYRDS"));
  auto mpx = compose_mpx(prog, cfg, bits);
  std::mt19937 rng(50);
  std::normal_distribution<float> n(0.0F, 0.01F);
  for (auto& v : mpx) v += n(rng);
  const auto result = decode_rds(mpx, kMpxRate);
  EXPECT_EQ(result.ps_name, "NOISYRDS");
}

TEST(RdsRadiotext, GroupLayout) {
  const auto groups = make_radiotext_groups("HELLO");
  // "HELLO" + CR -> 6 chars -> padded to 8 -> 2 groups of 4 characters.
  ASSERT_EQ(groups.size(), 2U);
  EXPECT_EQ(groups[0].blocks[1] >> 12, 0x2);  // group type 2
  EXPECT_EQ(groups[0].blocks[1] & 0xF, 0);    // segment 0
  EXPECT_EQ(groups[1].blocks[1] & 0xF, 1);    // segment 1
  EXPECT_EQ(groups[0].blocks[2], static_cast<std::uint16_t>(('H' << 8) | 'E'));
  EXPECT_EQ(groups[0].blocks[3], static_cast<std::uint16_t>(('L' << 8) | 'L'));
}

TEST(RdsRadiotext, TruncatesAtSixtyFour) {
  const auto groups = make_radiotext_groups(std::string(80, 'X'));
  EXPECT_LE(groups.size(), 16U);
}

TEST(RdsRadiotext, EndToEndDecode) {
  audio::StereoBuffer prog(std::vector<float>(144000, 0.0F),
                           std::vector<float>(144000, 0.0F), kAudioRate);
  MpxConfig cfg;
  cfg.rds_level = 0.1;
  const auto bits =
      serialize_groups(make_radiotext_groups("TICKETS 50% OFF TONIGHT"));
  const auto mpx = compose_mpx(prog, cfg, bits);
  const auto result = decode_rds(mpx, kMpxRate);
  EXPECT_EQ(result.radiotext, "TICKETS 50% OFF TONIGHT");
}

TEST(RdsRadiotext, CoexistsWithPsGroups) {
  audio::StereoBuffer prog(std::vector<float>(192000, 0.0F),
                           std::vector<float>(192000, 0.0F), kAudioRate);
  MpxConfig cfg;
  cfg.rds_level = 0.1;
  auto groups = make_ps_groups("FMBSCTTR");
  const auto rt = make_radiotext_groups("HELLO CITY");
  groups.insert(groups.end(), rt.begin(), rt.end());
  const auto bits = serialize_groups(groups);
  const auto mpx = compose_mpx(prog, cfg, bits);
  const auto result = decode_rds(mpx, kMpxRate);
  EXPECT_EQ(result.ps_name, "FMBSCTTR");
  EXPECT_EQ(result.radiotext, "HELLO CITY");
}

TEST(RdsTiming, HalfBitCaptureOffsetStillDecodes) {
  // Regression (decoder step 3): the timing search claimed to maximize the
  // *mean* |soft bit| but maximized the sum, structurally favoring phases
  // with small tau. A capture whose head is clipped by about half a bit
  // period puts the true symbol phase at the far end of the search range —
  // the worst case for that bias.
  audio::StereoBuffer prog(std::vector<float>(120000, 0.0F),
                           std::vector<float>(120000, 0.0F), kAudioRate);
  MpxConfig cfg;
  cfg.rds_level = 0.1;
  const auto bits = serialize_groups(make_ps_groups("TIMINGOK"));
  const auto mpx = compose_mpx(prog, cfg, bits);
  const auto offset =
      static_cast<std::size_t>(kMpxRate / kRdsBitRateHz / 2.0);  // ~half bit
  const std::vector<float> shifted(mpx.begin() + static_cast<std::ptrdiff_t>(offset),
                                   mpx.end());
  const auto result = decode_rds(shifted, kMpxRate);
  EXPECT_EQ(result.ps_name, "TIMINGOK");
  EXPECT_EQ(result.blocks_failed, 0U);
}

TEST(RdsTiming, WinningPhaseUsesEveryBitThatFits) {
  // Regression (decoder step 3): each phase must integrate every bit whose
  // period fits the capture instead of clamping all phases to a fixed count
  // two bits short — with the old fixed-count loop this assertion fails
  // (bits_decoded == floor(len/period) - 2).
  audio::StereoBuffer prog(std::vector<float>(96000, 0.0F),
                           std::vector<float>(96000, 0.0F), kAudioRate);
  MpxConfig cfg;
  cfg.rds_level = 0.1;
  const auto bits = serialize_groups(make_ps_groups("ALLBITS!"));
  const auto mpx = compose_mpx(prog, cfg, bits);
  const auto result = decode_rds(mpx, kMpxRate);
  const double bit_period = kMpxRate / kRdsBitRateHz;
  const auto fit =
      static_cast<std::size_t>(static_cast<double>(mpx.size()) / bit_period);
  EXPECT_GE(result.bits_decoded, fit - 1);
  EXPECT_EQ(result.ps_name, "ALLBITS!");
}

TEST(RdsErrorAccounting, CleanSignalReportsZeroFailedBlocks) {
  // Regression (decoder step 5): blocks_failed used to increment once per
  // misaligned scan offset, so a perfectly clean capture reported ~104
  // "failed blocks" per group found. Post-sync accounting must report zero.
  audio::StereoBuffer prog(std::vector<float>(96000, 0.0F),
                           std::vector<float>(96000, 0.0F), kAudioRate);
  MpxConfig cfg;
  cfg.rds_level = 0.1;
  const auto bits = serialize_groups(make_ps_groups("FMBSCTTR"));
  const auto mpx = compose_mpx(prog, cfg, bits);
  const auto result = decode_rds(mpx, kMpxRate);
  EXPECT_TRUE(result.synced);
  EXPECT_EQ(result.blocks_failed, 0U);
  EXPECT_GE(result.blocks_ok, 4U * result.groups.size());
  EXPECT_EQ(result.ps_name, "FMBSCTTR");
}

TEST(RdsErrorAccounting, CorruptedBitCountsRealBlockFailures) {
  audio::StereoBuffer prog(std::vector<float>(120000, 0.0F),
                           std::vector<float>(120000, 0.0F), kAudioRate);
  MpxConfig cfg;
  cfg.rds_level = 0.1;
  auto bits = serialize_groups(make_ps_groups("ERRBLOCK"));
  // Flip one information bit inside the second group's C block: every
  // cyclic repetition of the sequence now carries exactly one bad block
  // (the differential code localizes a transmitted-bit flip).
  bits[104 + 2 * 26 + 5] ^= 1;
  const auto mpx = compose_mpx(prog, cfg, bits);
  const auto result = decode_rds(mpx, kMpxRate);
  EXPECT_TRUE(result.synced);
  EXPECT_GT(result.blocks_failed, 0U);
  EXPECT_GT(result.blocks_ok, result.blocks_failed);
}

TEST(RdsDecode, EmptyAndShortInputsReturnNothing) {
  const auto r1 = decode_rds({}, kMpxRate);
  EXPECT_TRUE(r1.groups.empty());
  std::vector<float> tiny(100, 0.0F);
  const auto r2 = decode_rds(tiny, kMpxRate);
  EXPECT_TRUE(r2.groups.empty());
}

TEST(RdsModulate, Validation) {
  EXPECT_THROW(modulate_rds_subcarrier({}, 100, kMpxRate), std::invalid_argument);
  const std::vector<unsigned char> bits{1, 0};
  EXPECT_THROW(modulate_rds_subcarrier(bits, 100, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::fm
