// StereoStreamDecoder vs decode_stereo: the block-fed decoder must emit the
// one-shot decoder's audio bit for bit — any block size, any split — as long
// as its decision window covers the capture. This is the per-receiver
// equivalence the streaming scenario engine's golden tests rest on.
#include "fm/stereo_stream.h"

#include <gtest/gtest.h>

#include <cstddef>

#include "audio/tone.h"
#include "fm/mpx.h"
#include "fm/stereo_decoder.h"

namespace fmbs::fm {
namespace {

using audio::make_tone;
using audio::MonoBuffer;
using audio::StereoBuffer;

dsp::rvec test_mpx(bool stereo, double seconds = 0.5) {
  const MonoBuffer l = make_tone(1000.0, 0.6, seconds, kAudioRate);
  const MonoBuffer r = make_tone(3000.0, 0.6, seconds, kAudioRate);
  MpxConfig cfg;
  cfg.stereo = stereo;
  return compose_mpx(StereoBuffer(l.samples, r.samples, kAudioRate), cfg);
}

void expect_stream_matches_one_shot(const dsp::rvec& mpx,
                                    const StereoDecoderConfig& cfg,
                                    std::size_t block,
                                    double decision_window_seconds = -1.0) {
  SCOPED_TRACE("block=" + std::to_string(block));
  const StereoDecodeResult one_shot = decode_stereo(mpx, cfg);

  StereoStreamDecoder stream(cfg, mpx.size(), units::Seconds{decision_window_seconds});
  dsp::rvec left;
  dsp::rvec right;
  for (std::size_t i = 0; i < mpx.size(); i += block) {
    const std::size_t n = std::min(block, mpx.size() - i);
    stream.push(std::span<const float>(mpx.data() + i, n), left, right);
  }
  stream.finish(left, right);

  EXPECT_EQ(stream.stereo_mode(), one_shot.pilot_detected);
  EXPECT_EQ(stream.pilot_snr_db(), one_shot.pilot_snr_db);
  ASSERT_EQ(left.size(), one_shot.audio.left.size());
  ASSERT_EQ(right.size(), one_shot.audio.right.size());
  for (std::size_t i = 0; i < left.size(); ++i) {
    ASSERT_EQ(left[i], one_shot.audio.left[i]) << "left sample " << i;
    ASSERT_EQ(right[i], one_shot.audio.right[i]) << "right sample " << i;
  }
}

TEST(StereoStream, BlockFedMatchesOneShotStereo) {
  const dsp::rvec mpx = test_mpx(true);
  // Prime, tiny, block-aligned and whole-capture splits all hit the same
  // samples through the same state machines.
  expect_stream_matches_one_shot(mpx, StereoDecoderConfig{}, 7919);
  expect_stream_matches_one_shot(mpx, StereoDecoderConfig{}, 24000);
  expect_stream_matches_one_shot(mpx, StereoDecoderConfig{}, mpx.size());
}

TEST(StereoStream, BlockFedMatchesOneShotMonoFallback) {
  const dsp::rvec mpx = test_mpx(false);  // no pilot: decoder stays mono
  expect_stream_matches_one_shot(mpx, StereoDecoderConfig{}, 7919);
}

TEST(StereoStream, ForceMonoMatches) {
  const dsp::rvec mpx = test_mpx(true);
  StereoDecoderConfig cfg;
  cfg.force_mono = true;
  expect_stream_matches_one_shot(mpx, cfg, 10007);
}

TEST(StereoStream, DeemphasisMatches) {
  const dsp::rvec mpx = test_mpx(true);
  StereoDecoderConfig cfg;
  cfg.deemphasis = true;
  expect_stream_matches_one_shot(mpx, cfg, 7919);
}

TEST(StereoStream, DecisionWindowCoveringCaptureMatches) {
  const dsp::rvec mpx = test_mpx(true);
  // Window (10 s) far exceeds the 0.5 s capture: clamped to the capture, so
  // the decision is made from exactly what the one-shot decoder sees.
  expect_stream_matches_one_shot(mpx, StereoDecoderConfig{}, 7919, 10.0);
}

TEST(StereoStream, BoundedDecisionWindowIsBoundedMemory) {
  const dsp::rvec mpx = test_mpx(true, 1.0);
  StereoStreamDecoder stream(StereoDecoderConfig{}, mpx.size(), units::Seconds{0.25});
  EXPECT_EQ(stream.decision_buffer_bytes(),
            static_cast<std::size_t>(0.25 * kMpxRate) * sizeof(float));
  dsp::rvec left;
  dsp::rvec right;
  stream.push(mpx, left, right);
  stream.finish(left, right);
  // The pilot is strong throughout, so the bounded decision agrees with the
  // whole-capture one, and the full audio stream still comes out.
  EXPECT_TRUE(stream.stereo_mode());
  EXPECT_EQ(left.size(), mpx.size() / 5);
}

}  // namespace
}  // namespace fmbs::fm
