#include "fm/mpx.h"

#include <gtest/gtest.h>

#include <cmath>

#include "audio/tone.h"
#include "dsp/spectrum.h"
#include "fm/constants.h"
#include "fm/emphasis.h"

namespace fmbs::fm {
namespace {

using audio::make_silence;
using audio::make_tone;
using audio::MonoBuffer;
using audio::StereoBuffer;

StereoBuffer tone_pair(double fl, double fr, double seconds = 0.5) {
  const MonoBuffer l = make_tone(fl, 0.6, seconds, kAudioRate);
  const MonoBuffer r = make_tone(fr, 0.6, seconds, kAudioRate);
  return StereoBuffer(l.samples, r.samples, kAudioRate);
}

TEST(Mpx, StereoLayoutMatchesFig3) {
  // Paper Fig. 3: mono (L+R) below 15 kHz, pilot at 19 kHz, stereo (L-R)
  // DSB-SC around 38 kHz.
  const StereoBuffer prog = tone_pair(1000.0, 2500.0);
  MpxConfig cfg;
  const auto mpx = compose_mpx(prog, cfg);

  const double p_mono = dsp::band_power(mpx, kMpxRate, 500.0, 3000.0);
  const double p_pilot = dsp::band_power(mpx, kMpxRate, 18900.0, 19100.0);
  const double p_stereo = dsp::band_power(mpx, kMpxRate, 34000.0, 42000.0);
  const double p_gap = dsp::band_power(mpx, kMpxRate, 60000.0, 80000.0);
  EXPECT_GT(p_mono, 100.0 * p_gap);
  EXPECT_GT(p_pilot, 100.0 * p_gap);
  EXPECT_GT(p_stereo, 100.0 * p_gap);
}

TEST(Mpx, PilotLevelIsTenPercent) {
  const StereoBuffer prog = tone_pair(1000.0, 1000.0);  // L==R: no stereo band
  MpxConfig cfg;
  const auto mpx = compose_mpx(prog, cfg);
  const double p_pilot = dsp::band_power(mpx, kMpxRate, 18800.0, 19200.0);
  // Pilot amplitude 0.1 -> power 0.005.
  EXPECT_NEAR(p_pilot, 0.005, 0.001);
}

TEST(Mpx, MonoModeOmitsPilotAndSubcarrier) {
  const StereoBuffer prog = tone_pair(1000.0, 2500.0);
  MpxConfig cfg;
  cfg.stereo = false;
  const auto mpx = compose_mpx(prog, cfg);
  const double p_pilot = dsp::band_power(mpx, kMpxRate, 18800.0, 19200.0);
  const double p_stereo = dsp::band_power(mpx, kMpxRate, 30000.0, 46000.0);
  EXPECT_LT(p_pilot, 1e-6);
  EXPECT_LT(p_stereo, 1e-6);
}

TEST(Mpx, IdenticalChannelsHaveEmptyStereoBand) {
  // A news station: same audio on L and R -> nothing at 23-53 kHz. This is
  // the under-utilization stereo backscatter exploits (paper Fig. 5).
  const StereoBuffer prog = tone_pair(3000.0, 3000.0);
  const auto mpx = compose_mpx(prog, MpxConfig{});
  const double p_stereo = dsp::band_power(mpx, kMpxRate, 30000.0, 46000.0);
  const double p_mono = dsp::band_power(mpx, kMpxRate, 2500.0, 3500.0);
  EXPECT_LT(p_stereo, 1e-4 * p_mono);
}

TEST(Mpx, BoundedByUnity) {
  const StereoBuffer prog = tone_pair(800.0, 7000.0);
  const auto mpx = compose_mpx(prog, MpxConfig{});
  for (const float v : mpx) {
    EXPECT_LE(std::abs(v), 1.0F + 1e-3F);
  }
}

TEST(Mpx, RdsInjectionAt57k) {
  const StereoBuffer prog = tone_pair(1000.0, 1000.0);
  MpxConfig cfg;
  cfg.rds_level = 0.05;
  const std::vector<unsigned char> bits{1, 0, 1, 1, 0, 0, 1, 0};
  const auto mpx = compose_mpx(prog, cfg, bits);
  const double p_rds = dsp::band_power(mpx, kMpxRate, 55500.0, 58500.0);
  EXPECT_GT(p_rds, 1e-4);
}

TEST(Mpx, RateValidation) {
  const StereoBuffer prog = tone_pair(1000.0, 1000.0, 0.01);
  MpxConfig cfg;
  cfg.mpx_rate = 100000.0;  // not an integer multiple of 48 kHz
  EXPECT_THROW(compose_mpx(prog, cfg), std::invalid_argument);
}

TEST(Mpx, ExtractMonoRecoversProgram) {
  const StereoBuffer prog = tone_pair(2000.0, 2000.0);
  MpxConfig cfg;
  const auto mpx = compose_mpx(prog, cfg);
  const auto mono = extract_mono(mpx, cfg);
  // Mono = (L+R)/2 = the 2 kHz tone at amplitude 0.6 (level compensated).
  const double p = dsp::band_power(mono, kMpxRate, 1900.0, 2100.0);
  EXPECT_NEAR(p, 0.18, 0.03);
}

TEST(Emphasis, PreThenDeIsIdentity) {
  const MonoBuffer t = make_tone(5000.0, 0.5, 0.2, kAudioRate);
  PreEmphasis pre( units::Seconds{kDeemphasisSeconds}, kAudioRate);
  DeEmphasis de( units::Seconds{kDeemphasisSeconds}, kAudioRate);
  const auto boosted = pre.process(t.samples);
  const auto restored = de.process(boosted);
  for (std::size_t i = 100; i < restored.size(); ++i) {
    EXPECT_NEAR(restored[i], t.samples[i], 5e-3F);
  }
}

TEST(Emphasis, PreEmphasisBoostsTreble) {
  PreEmphasis pre( units::Seconds{kDeemphasisSeconds}, kAudioRate);
  const MonoBuffer hi = make_tone(10000.0, 0.1, 0.2, kAudioRate);
  const auto boosted = pre.process(hi.samples);
  double in = 0.0, out = 0.0;
  for (std::size_t i = boosted.size() / 2; i < boosted.size(); ++i) {
    in += static_cast<double>(hi.samples[i]) * hi.samples[i];
    out += static_cast<double>(boosted[i]) * boosted[i];
  }
  // 75 us pre-emphasis at 10 kHz: ~ +13 dB.
  EXPECT_GT(out / in, 10.0);
}

TEST(Emphasis, DeEmphasisCutsTreble) {
  DeEmphasis de( units::Seconds{kDeemphasisSeconds}, kAudioRate);
  const MonoBuffer hi = make_tone(10000.0, 0.5, 0.2, kAudioRate);
  const auto cut = de.process(hi.samples);
  double in = 0.0, out = 0.0;
  for (std::size_t i = cut.size() / 2; i < cut.size(); ++i) {
    in += static_cast<double>(hi.samples[i]) * hi.samples[i];
    out += static_cast<double>(cut[i]) * cut[i];
  }
  EXPECT_LT(out / in, 0.1);
}

}  // namespace
}  // namespace fmbs::fm
