#include <gtest/gtest.h>

#include "dsp/spectrum.h"
#include "fm/receiver.h"
#include "fm/rds.h"
#include "fm/transmitter.h"

namespace fmbs::fm {
namespace {

TEST(Station, RendersConsistentLengths) {
  StationConfig cfg;
  cfg.program.genre = audio::ProgramGenre::kNews;
  const StationSignal sig = render_station(cfg, units::Seconds{1.0});
  EXPECT_EQ(sig.iq.size(), static_cast<std::size_t>(kMpxRate));
  EXPECT_EQ(sig.mpx.size(), sig.iq.size());
  EXPECT_EQ(sig.program.size(), static_cast<std::size_t>(kAudioRate));
}

TEST(Station, UnitEnvelope) {
  StationConfig cfg;
  cfg.program.genre = audio::ProgramGenre::kPop;
  const StationSignal sig = render_station(cfg, units::Seconds{0.3});
  for (std::size_t i = 0; i < sig.iq.size(); i += 101) {
    EXPECT_NEAR(std::abs(sig.iq[i]), 1.0F, 1e-4F);
  }
}

TEST(Station, DeterministicPerSeed) {
  StationConfig cfg;
  cfg.program.genre = audio::ProgramGenre::kRock;
  cfg.seed = 77;
  const StationSignal a = render_station(cfg, units::Seconds{0.2});
  const StationSignal b = render_station(cfg, units::Seconds{0.2});
  ASSERT_EQ(a.iq.size(), b.iq.size());
  for (std::size_t i = 0; i < a.iq.size(); i += 37) {
    EXPECT_EQ(a.iq[i], b.iq[i]);
  }
}

TEST(Station, Validation) {
  StationConfig cfg;
  EXPECT_THROW(render_station(cfg, units::Seconds{0.0}), std::invalid_argument);
  EXPECT_THROW(render_station(cfg, units::Seconds{-1.0}), std::invalid_argument);
}

TEST(StationToReceiver, FullLoopbackRecoversProgram) {
  // Station IQ straight into the receiver: decoded audio must match the
  // program (the transmit chain and receive chain are inverses).
  StationConfig cfg;
  cfg.program.genre = audio::ProgramGenre::kNews;
  cfg.program.stereo = true;
  cfg.seed = 5;
  const StationSignal sig = render_station(cfg, units::Seconds{2.0});

  ReceiverConfig rcfg;
  const ReceiverOutput out = receive_fm(sig.iq, rcfg);
  EXPECT_TRUE(out.stereo_mode);

  // Compare decoded mono with program mid via correlation-insensitive power
  // matching in the speech band.
  const auto mono = out.mono();
  const double p_out = dsp::band_power(mono.samples, kAudioRate, 200.0, 4000.0);
  const double p_in =
      dsp::band_power(sig.program.mid().samples, kAudioRate, 200.0, 4000.0);
  EXPECT_NEAR(p_out / p_in, 1.0, 0.25);
}

TEST(StationToReceiver, RdsRidesAlong) {
  StationConfig cfg;
  cfg.program.genre = audio::ProgramGenre::kNews;
  cfg.rds_level = 0.08;
  cfg.rds_ps_name = "KKFM 923";
  const StationSignal sig = render_station(cfg, units::Seconds{2.5});
  ReceiverConfig rcfg;
  const ReceiverOutput out = receive_fm(sig.iq, rcfg);
  const auto rds = decode_rds(out.mpx, kMpxRate);
  EXPECT_EQ(rds.ps_name, "KKFM 923");
}

TEST(Receiver, EmptyInputThrows) {
  ReceiverConfig rcfg;
  EXPECT_THROW(receive_fm({}, rcfg), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::fm
