#include <gtest/gtest.h>

#include <cmath>

#include "audio/tone.h"
#include "dsp/math_util.h"
#include "dsp/spectrum.h"
#include "fm/demodulator.h"
#include "fm/modulator.h"

namespace fmbs::fm {
namespace {

using audio::make_tone;

TEST(FmModulator, UnitEnvelope) {
  FmModulator mod( units::Hertz{kMaxDeviationHz}, kMpxRate);
  const auto t = make_tone(1000.0, 0.8, 0.1, kMpxRate);
  const auto iq = mod.process(t.samples);
  for (const auto& v : iq) {
    EXPECT_NEAR(std::abs(v), 1.0F, 1e-4F);
  }
}

TEST(FmModulator, CarsonBandwidth) {
  // Eq. 1 + Carson's rule: a 15 kHz tone at full deviation occupies about
  // 2(75+15) = 180 kHz.
  FmModulator mod( units::Hertz{kMaxDeviationHz}, kMpxRate);
  const auto t = make_tone(15000.0, 1.0, 0.5, kMpxRate);
  const auto iq = mod.process(t.samples);
  // Measure occupied bandwidth from the complex spectrum: power outside
  // +-120 kHz should be tiny, power inside +-90 kHz nearly total.
  std::vector<float> re(iq.size());
  for (std::size_t i = 0; i < iq.size(); ++i) re[i] = iq[i].real();
  const double total = dsp::band_power(re, kMpxRate, 0.0, 120000.0);
  const double inside = dsp::band_power(re, kMpxRate, 0.0, 95000.0);
  EXPECT_GT(inside / total, 0.98);
}

TEST(FmModulator, Validation) {
  EXPECT_THROW(FmModulator( units::Hertz{0.0}, kMpxRate), std::invalid_argument);
  EXPECT_THROW(FmModulator( units::Hertz{75000.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(FmModulator( units::Hertz{200000.0}, 240000.0), std::invalid_argument);
}

TEST(FmModem, RoundTripRecoversBaseband) {
  FmModulator mod( units::Hertz{kMaxDeviationHz}, kMpxRate);
  QuadratureDemodulator demod( units::Hertz{kMaxDeviationHz}, kMpxRate);
  const auto t = make_tone(7000.0, 0.7, 0.2, kMpxRate);
  const auto iq = mod.process(t.samples);
  const auto back = demod.process(iq);
  ASSERT_EQ(back.size(), t.samples.size());
  // The discriminator measures the phase increment between samples, so its
  // output is the baseband delayed by exactly one sample.
  for (std::size_t i = 10; i < back.size(); ++i) {
    EXPECT_NEAR(back[i], t.samples[i - 1], 0.01F) << "at " << i;
  }
}

TEST(FmModem, AmplitudeProportionalToDeviation) {
  // Paper section 3.2: "the amplitude of the decoded baseband audio signal
  // is scaled by the frequency deviation; larger frequency deviations result
  // in a louder audio signal."
  const auto t = make_tone(1000.0, 0.5, 0.1, kMpxRate);
  FmModulator mod_full( units::Hertz{75000.0}, kMpxRate);
  FmModulator mod_half( units::Hertz{37500.0}, kMpxRate);
  // Demodulate both with the same receiver assumption (75 kHz).
  QuadratureDemodulator demod1( units::Hertz{75000.0}, kMpxRate);
  QuadratureDemodulator demod2( units::Hertz{75000.0}, kMpxRate);
  const auto out_full = demod1.process(mod_full.process(t.samples));
  const auto out_half = demod2.process(mod_half.process(t.samples));
  const double rms_full = dsp::rms({out_full.data() + 100, out_full.size() - 100});
  const double rms_half = dsp::rms({out_half.data() + 100, out_half.size() - 100});
  EXPECT_NEAR(rms_full / rms_half, 2.0, 0.05);
}

TEST(FmModem, FrequencyAdditionBecomesBasebandAddition) {
  // The core backscatter identity at the modem level: modulating with
  // (a + b) yields demodulated (a + b) — FM turns frequency offsets into
  // additive baseband.
  const auto a = make_tone(2000.0, 0.4, 0.2, kMpxRate);
  const auto b = make_tone(9000.0, 0.3, 0.2, kMpxRate);
  std::vector<float> sum(a.size());
  for (std::size_t i = 0; i < sum.size(); ++i) sum[i] = a.samples[i] + b.samples[i];
  FmModulator mod( units::Hertz{kMaxDeviationHz}, kMpxRate);
  QuadratureDemodulator demod( units::Hertz{kMaxDeviationHz}, kMpxRate);
  const auto back = demod.process(mod.process(sum));
  for (std::size_t i = 10; i < back.size(); ++i) {
    EXPECT_NEAR(back[i], sum[i - 1], 0.02F);
  }
}

TEST(FmModem, SurvivesPhaseRotation) {
  // A constant channel phase must not affect the demodulated audio.
  FmModulator mod( units::Hertz{kMaxDeviationHz}, kMpxRate);
  QuadratureDemodulator demod( units::Hertz{kMaxDeviationHz}, kMpxRate);
  const auto t = make_tone(3000.0, 0.6, 0.1, kMpxRate);
  auto iq = mod.process(t.samples);
  const dsp::cfloat rot(std::cos(1.234F), std::sin(1.234F));
  for (auto& v : iq) v *= rot;
  const auto back = demod.process(iq);
  for (std::size_t i = 10; i < back.size(); ++i) {
    EXPECT_NEAR(back[i], t.samples[i - 1], 0.01F);
  }
}

TEST(FmModem, SurvivesAmplitudeScaling) {
  // FM is constant-envelope: receiver output is amplitude independent.
  FmModulator mod( units::Hertz{kMaxDeviationHz}, kMpxRate);
  QuadratureDemodulator demod( units::Hertz{kMaxDeviationHz}, kMpxRate);
  const auto t = make_tone(3000.0, 0.6, 0.1, kMpxRate);
  auto iq = mod.process(t.samples);
  for (auto& v : iq) v *= 0.001F;
  const auto back = demod.process(iq);
  for (std::size_t i = 10; i < back.size(); ++i) {
    EXPECT_NEAR(back[i], t.samples[i - 1], 0.01F);
  }
}

TEST(QuadratureDemodulator, Validation) {
  EXPECT_THROW(QuadratureDemodulator( units::Hertz{0.0}, kMpxRate), std::invalid_argument);
  EXPECT_THROW(QuadratureDemodulator( units::Hertz{75000.0}, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::fm
