// StationCache scene scopes: a multi-station scene pins its renders for the
// duration of a run — the cache overflows transiently rather than letting a
// scene wider than the capacity thrash (or a concurrent scene evict) its
// own stations — and optionally drops them on exit.
#include "fm/station_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace fmbs::fm {
namespace {

StationConfig station_with_seed(std::uint64_t seed) {
  StationConfig config;
  config.program.genre = audio::ProgramGenre::kSilence;
  config.program.stereo = false;
  config.seed = seed;
  return config;
}

class StationCacheScopeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_.clear();
    cache_.reset_stats();
    original_capacity_ = cache_.capacity();
  }
  void TearDown() override {
    cache_.set_capacity(original_capacity_);
    cache_.clear();
    cache_.reset_stats();
  }

  StationCache& cache_ = StationCache::instance();
  std::size_t original_capacity_ = 0;
};

TEST_F(StationCacheScopeTest, DefaultCapacityHoldsACityScene) {
  // An 8-station scene plus a few single-station sweeps must fit without
  // evictions (the LRU-of-4 this replaces thrashed on every repeat).
  EXPECT_GE(cache_.capacity(), 16U);
}

TEST_F(StationCacheScopeTest, PinnedSceneOverflowsInsteadOfThrashing) {
  cache_.set_capacity(2);
  {
    StationCache::SceneScope scope(cache_);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      (void)scope.render(station_with_seed(seed), units::Seconds{0.05});
    }
    EXPECT_EQ(cache_.stats().misses, 4U);
    // Every station of the scene is still resident despite capacity 2: the
    // second pass is all hits. An unpinned LRU-of-2 would re-render each.
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      (void)scope.render(station_with_seed(seed), units::Seconds{0.05});
    }
    EXPECT_EQ(cache_.stats().misses, 4U);
    EXPECT_EQ(cache_.stats().hits, 4U);
  }
  // Scope gone: the cache shrinks back to capacity, keeping the most
  // recently used renders (seeds 3 and 4).
  (void)cache_.render(station_with_seed(4), units::Seconds{0.05});
  EXPECT_EQ(cache_.stats().hits, 5U);
  (void)cache_.render(station_with_seed(1), units::Seconds{0.05});
  EXPECT_EQ(cache_.stats().misses, 5U);
}

TEST_F(StationCacheScopeTest, PinsProtectAgainstConcurrentScenes) {
  cache_.set_capacity(1);
  StationCache::SceneScope scene_a(cache_);
  (void)scene_a.render(station_with_seed(11), units::Seconds{0.05});
  // A second scene (another sweep thread) floods the cache; the pinned
  // render must survive it.
  {
    StationCache::SceneScope scene_b(cache_);
    for (std::uint64_t seed = 21; seed <= 23; ++seed) {
      (void)scene_b.render(station_with_seed(seed), units::Seconds{0.05});
    }
    (void)scene_a.render(station_with_seed(11), units::Seconds{0.05});
    EXPECT_EQ(cache_.stats().hits, 1U);  // still resident: no re-render
  }
}

TEST_F(StationCacheScopeTest, EvictOnExitDropsTheSceneEntries) {
  {
    StationCache::SceneScope scope(cache_, /*evict_on_exit=*/true);
    (void)scope.render(station_with_seed(31), units::Seconds{0.05});
    (void)scope.render(station_with_seed(32), units::Seconds{0.05});
  }
  EXPECT_EQ(cache_.stats().misses, 2U);
  // Dropped on exit: rendering again misses.
  (void)cache_.render(station_with_seed(31), units::Seconds{0.05});
  EXPECT_EQ(cache_.stats().misses, 3U);
  EXPECT_EQ(cache_.stats().hits, 0U);
}

TEST_F(StationCacheScopeTest, SharedKeyStaysWhileAnotherScopeHoldsIt) {
  {
    StationCache::SceneScope keeper(cache_);
    (void)keeper.render(station_with_seed(41), units::Seconds{0.05});
    {
      StationCache::SceneScope dropper(cache_, /*evict_on_exit=*/true);
      (void)dropper.render(station_with_seed(41), units::Seconds{0.05});
    }
    // The dropper exits but the keeper still pins the entry.
    (void)cache_.render(station_with_seed(41), units::Seconds{0.05});
    EXPECT_EQ(cache_.stats().misses, 1U);
    EXPECT_EQ(cache_.stats().hits, 2U);
  }
}

TEST_F(StationCacheScopeTest, ScopedRenderEqualsPlainRender) {
  const auto plain = cache_.render(station_with_seed(51), units::Seconds{0.05});
  StationCache::SceneScope scope(cache_);
  const auto scoped = scope.render(station_with_seed(51), units::Seconds{0.05});
  EXPECT_EQ(plain.get(), scoped.get());  // literally the same render
}

// The TSan workload: N threads hammer SceneScope pin/evict over a small
// overlapping key set with capacity well below the key count, so every
// iteration races lookup-vs-insert, pin-vs-evict, and scope teardown against
// concurrent renders of the same and neighboring keys. Functional assertions
// keep it honest single-threaded too: every render must be non-null and
// byte-identical to the uncontended reference for its seed.
TEST_F(StationCacheScopeTest, ConcurrentScopesPinAndEvictSafely) {
  constexpr std::uint64_t kSeeds = 6;
  constexpr std::size_t kThreads = 8;
  constexpr int kItersPerThread = 12;
  constexpr double kDuration = 0.02;

  // Uncontended reference renders, one per key, taken before any contention
  // (cache bypassed so the references cannot mask a caching bug).
  cache_.set_enabled(false);
  std::vector<std::shared_ptr<const StationSignal>> reference;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    reference.push_back(cache_.render(station_with_seed(seed + 1), units::Seconds{kDuration}));
  }
  cache_.set_enabled(true);
  cache_.reset_stats();
  cache_.set_capacity(2);  // far below kSeeds: eviction happens constantly

  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < kItersPerThread; ++iter) {
        // Alternate keep/evict scopes so teardown exercises both paths.
        StationCache::SceneScope scope(cache_,
                                       /*evict_on_exit=*/(t + iter) % 2 == 0);
        // Each thread walks the key ring from its own offset: every pair of
        // threads overlaps on most keys most of the time.
        for (std::uint64_t k = 0; k < 3; ++k) {
          const std::uint64_t seed = (t + iter + k) % kSeeds;
          const auto signal =
              scope.render(station_with_seed(seed + 1), units::Seconds{kDuration});
          const auto& expect = *reference[seed];
          if (signal == nullptr || signal->iq.size() != expect.iq.size() ||
              (!signal->iq.empty() && signal->iq[0] != expect.iq[0]) ||
              (!signal->iq.empty() &&
               signal->iq.back() != expect.iq.back())) {
            ++mismatches[t];  // one writer per slot: no race on the counter
          }
        }
        // Unscoped renders from the same thread race the scopes' pins.
        (void)cache_.render(station_with_seed((t + iter) % kSeeds + 1), units::Seconds{kDuration});
      }
    });
  }
  for (auto& th : threads) th.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t << " saw a wrong render";
  }
  // Pins all released: the cache can shrink back below capacity and serve
  // a fresh scope normally.
  cache_.set_capacity(1);
  StationCache::SceneScope scope(cache_);
  const auto after = scope.render(station_with_seed(1), units::Seconds{kDuration});
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->iq.size(), reference[0]->iq.size());
}

}  // namespace
}  // namespace fmbs::fm
