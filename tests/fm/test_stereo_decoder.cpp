#include "fm/stereo_decoder.h"

#include <gtest/gtest.h>

#include "audio/tone.h"
#include "dsp/spectrum.h"
#include "fm/mpx.h"

namespace fmbs::fm {
namespace {

using audio::make_noise;
using audio::make_tone;
using audio::MonoBuffer;
using audio::StereoBuffer;

StereoBuffer tone_pair(double fl, double fr, double seconds = 1.0) {
  const MonoBuffer l = make_tone(fl, 0.6, seconds, kAudioRate);
  const MonoBuffer r = make_tone(fr, 0.6, seconds, kAudioRate);
  return StereoBuffer(l.samples, r.samples, kAudioRate);
}

TEST(StereoDecoder, SeparatesLeftAndRight) {
  const StereoBuffer prog = tone_pair(1000.0, 3000.0);
  const auto mpx = compose_mpx(prog, MpxConfig{});
  const auto out = decode_stereo(mpx, StereoDecoderConfig{});
  ASSERT_TRUE(out.pilot_detected);
  // Left should carry 1 kHz, right 3 kHz, with strong separation.
  const double l1 = dsp::band_power(out.audio.left, kAudioRate, 900.0, 1100.0);
  const double l3 = dsp::band_power(out.audio.left, kAudioRate, 2900.0, 3100.0);
  const double r3 = dsp::band_power(out.audio.right, kAudioRate, 2900.0, 3100.0);
  const double r1 = dsp::band_power(out.audio.right, kAudioRate, 900.0, 1100.0);
  EXPECT_GT(l1, 30.0 * l3);
  EXPECT_GT(r3, 30.0 * r1);
}

TEST(StereoDecoder, NoPilotMeansMonoMode) {
  MpxConfig mono_cfg;
  mono_cfg.stereo = false;
  const StereoBuffer prog = tone_pair(1000.0, 3000.0);
  const auto mpx = compose_mpx(prog, mono_cfg);
  const auto out = decode_stereo(mpx, StereoDecoderConfig{});
  EXPECT_FALSE(out.pilot_detected);
  // Mono mode: both channels identical.
  for (std::size_t i = 0; i < out.audio.size(); i += 53) {
    EXPECT_EQ(out.audio.left[i], out.audio.right[i]);
  }
}

TEST(StereoDecoder, BuriedPilotFallsBackToMono) {
  // Paper: "at lower power numbers FM receivers cannot decode the pilot
  // signal and default back to mono mode." Bury the pilot in noise.
  const StereoBuffer prog = tone_pair(1000.0, 3000.0);
  auto mpx = compose_mpx(prog, MpxConfig{});
  const MonoBuffer noise = make_noise(0.8, 1.0, kMpxRate, 44);
  for (std::size_t i = 0; i < mpx.size() && i < noise.size(); ++i) {
    mpx[i] += noise.samples[i];
  }
  const auto out = decode_stereo(mpx, StereoDecoderConfig{});
  EXPECT_FALSE(out.pilot_detected);
}

TEST(StereoDecoder, ForceMonoIgnoresPilot) {
  const StereoBuffer prog = tone_pair(1000.0, 3000.0);
  const auto mpx = compose_mpx(prog, MpxConfig{});
  StereoDecoderConfig cfg;
  cfg.force_mono = true;
  const auto out = decode_stereo(mpx, cfg);
  EXPECT_FALSE(out.pilot_detected);
}

TEST(StereoDecoder, PilotSnrReported) {
  const StereoBuffer prog = tone_pair(500.0, 500.0);
  const auto mpx = compose_mpx(prog, MpxConfig{});
  const auto out = decode_stereo(mpx, StereoDecoderConfig{});
  EXPECT_GT(out.pilot_snr_db, 20.0);
}

TEST(StereoDecoder, SideRecoversLMinusR) {
  // The stereo backscatter receive path: side() must carry the (L-R)/2
  // content. L = tone, R = -tone -> mid = 0, side = tone.
  const MonoBuffer t = make_tone(2000.0, 0.5, 1.0, kAudioRate);
  std::vector<float> right(t.samples.size());
  for (std::size_t i = 0; i < right.size(); ++i) right[i] = -t.samples[i];
  const StereoBuffer prog(t.samples, right, kAudioRate);
  const auto mpx = compose_mpx(prog, MpxConfig{});
  const auto out = decode_stereo(mpx, StereoDecoderConfig{});
  ASSERT_TRUE(out.pilot_detected);
  std::vector<float> side(out.audio.size());
  for (std::size_t i = 0; i < side.size(); ++i) {
    side[i] = 0.5F * (out.audio.left[i] - out.audio.right[i]);
  }
  const double p_side = dsp::band_power(side, kAudioRate, 1900.0, 2100.0);
  // Expected power of 0.5-amplitude tone: 0.125.
  EXPECT_NEAR(p_side, 0.125, 0.03);
  // And the mono output should be nearly empty.
  const double p_mid =
      dsp::band_power(out.audio.mid().samples, kAudioRate, 1900.0, 2100.0);
  EXPECT_LT(p_mid, 0.05 * p_side);
}

TEST(StereoDecoder, DeemphasisCutsHighs) {
  const StereoBuffer prog = tone_pair(12000.0, 12000.0);
  const auto mpx = compose_mpx(prog, MpxConfig{});
  StereoDecoderConfig plain;
  StereoDecoderConfig with_de;
  with_de.deemphasis = true;
  const auto out_plain = decode_stereo(mpx, plain);
  const auto out_de = decode_stereo(mpx, with_de);
  const double p_plain =
      dsp::band_power(out_plain.audio.left, kAudioRate, 11500.0, 12500.0);
  const double p_de =
      dsp::band_power(out_de.audio.left, kAudioRate, 11500.0, 12500.0);
  EXPECT_LT(p_de, 0.15 * p_plain);
}

TEST(StereoDecoder, Validation) {
  EXPECT_THROW(decode_stereo({}, StereoDecoderConfig{}), std::invalid_argument);
  StereoDecoderConfig bad;
  bad.audio_rate = 47000.0;  // not a divisor of 240 kHz
  const auto mpx = compose_mpx(tone_pair(440.0, 440.0, 0.05), MpxConfig{});
  EXPECT_THROW(decode_stereo(mpx, bad), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::fm
