#include "channel/fading.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/math_util.h"

namespace fmbs::channel {
namespace {

TEST(Fading, StaticConfigIsIdentity) {
  FadingConfig cfg;
  cfg.speed_mps = 0.0;
  cfg.shadow_sigma = units::Db{0.0};
  FadingProcess p(cfg, 48000.0, 1);
  EXPECT_TRUE(p.is_static());
  dsp::cvec block(100, dsp::cfloat(0.5F, -0.5F));
  const dsp::cvec before = block;
  p.apply(block);
  EXPECT_EQ(block, before);
}

TEST(Fading, UnitMeanPower) {
  FadingConfig cfg = fading_for_mobility(Mobility::kWalking);
  cfg.shadow_sigma = units::Db{0.0};  // isolate the Rician part
  FadingProcess p(cfg, 10000.0, 2);
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += std::norm(p.next());
  EXPECT_NEAR(acc / n, 1.0, 0.15);
}

TEST(Fading, RunningFadesDeeperThanStanding) {
  const double rate = 10000.0;
  auto depth = [&](Mobility m) {
    FadingProcess p(fading_for_mobility(m), rate, 3);
    double min_mag = 1e9;
    for (int i = 0; i < 200000; ++i) {
      min_mag = std::min(min_mag, static_cast<double>(std::abs(p.next())));
    }
    return min_mag;
  };
  EXPECT_LT(depth(Mobility::kRunning), depth(Mobility::kStanding));
}

TEST(Fading, DopplerRateScalesWithSpeed) {
  // Track the channel phase rotation rate: faster motion -> faster change.
  const double rate = 10000.0;
  auto variation = [&](double speed) {
    FadingConfig cfg;
    cfg.speed_mps = speed;
    cfg.rician_k = units::Db{-20.0};  // nearly pure scatter to expose Doppler
    cfg.shadow_sigma = units::Db{0.0};
    FadingProcess p(cfg, rate, 4);
    dsp::cfloat prev = p.next();
    double acc = 0.0;
    for (int i = 0; i < 100000; ++i) {
      const dsp::cfloat cur = p.next();
      acc += std::abs(cur - prev);
      prev = cur;
    }
    return acc;
  };
  EXPECT_GT(variation(2.2), 1.8 * variation(1.0));
}

TEST(Fading, StrideAdvancesTime) {
  FadingConfig cfg = fading_for_mobility(Mobility::kRunning);
  cfg.shadow_sigma = units::Db{0.0};
  FadingProcess a(cfg, 10000.0, 5);
  FadingProcess b(cfg, 10000.0, 5);
  // a: 100 unit steps; b: one stride-100 step — same point of the process.
  dsp::cfloat ga;
  for (int i = 0; i < 100; ++i) ga = a.next();
  const dsp::cfloat gb = b.next(100);
  EXPECT_NEAR(std::abs(ga), std::abs(gb), 0.05);
}

TEST(Fading, MobilityPresetsOrdered) {
  const auto standing = fading_for_mobility(Mobility::kStanding);
  const auto walking = fading_for_mobility(Mobility::kWalking);
  const auto running = fading_for_mobility(Mobility::kRunning);
  EXPECT_LT(standing.speed_mps, walking.speed_mps);
  EXPECT_LT(walking.speed_mps, running.speed_mps);
  EXPECT_NEAR(walking.speed_mps, 1.0, 1e-9);   // paper: 1 m/s
  EXPECT_NEAR(running.speed_mps, 2.2, 1e-9);   // paper: 2.2 m/s
  EXPECT_GT(standing.rician_k.raw(), running.rician_k.raw());
}

TEST(Fading, DeterministicPerSeed) {
  const FadingConfig cfg = fading_for_mobility(Mobility::kWalking);
  FadingProcess a(cfg, 10000.0, 9);
  FadingProcess b(cfg, 10000.0, 9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Fading, Validation) {
  FadingConfig cfg;
  EXPECT_THROW(FadingProcess(cfg, 0.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::channel
