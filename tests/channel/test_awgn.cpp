#include "channel/awgn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/math_util.h"

namespace fmbs::channel {
namespace {

TEST(Awgn, VarianceMatchesSpec) {
  // -90 dBm in 200 kHz at a 2.4 MHz rate -> total power -90 + 10log10(12).
  AwgnSource src( units::Dbm{-90.0}, units::Hertz{200000.0}, 2400000.0, 1);
  const double expected = dsp::watts_from_dbm(-90.0) * 12.0;
  EXPECT_NEAR(src.variance(), expected, expected * 1e-9);

  dsp::cvec block(200000);
  src.add_to(block);
  double measured = 0.0;
  for (const auto& v : block) measured += std::norm(v);
  measured /= static_cast<double>(block.size());
  EXPECT_NEAR(measured, expected, expected * 0.05);
}

TEST(Awgn, AddsToExistingSignal) {
  AwgnSource src( units::Dbm{-60.0}, units::Hertz{200000.0}, 2400000.0, 2);
  dsp::cvec block(1000, dsp::cfloat(1.0F, 0.0F));
  src.add_to(block);
  double mean_re = 0.0;
  for (const auto& v : block) mean_re += v.real();
  EXPECT_NEAR(mean_re / 1000.0, 1.0, 0.01);
}

TEST(Awgn, DeterministicPerSeed) {
  AwgnSource a( units::Dbm{-80.0}, units::Hertz{200000.0}, 2400000.0, 7);
  AwgnSource b( units::Dbm{-80.0}, units::Hertz{200000.0}, 2400000.0, 7);
  AwgnSource c( units::Dbm{-80.0}, units::Hertz{200000.0}, 2400000.0, 8);
  dsp::cvec x(64), y(64), z(64);
  a.add_to(x);
  b.add_to(y);
  c.add_to(z);
  EXPECT_EQ(x, y);
  EXPECT_NE(x, z);
}

TEST(Awgn, ZeroMeanComplexAndBalanced) {
  AwgnSource src( units::Dbm{-70.0}, units::Hertz{200000.0}, 2400000.0, 3);
  dsp::cvec block(100000);
  src.add_to(block);
  double re = 0.0, im = 0.0, re2 = 0.0, im2 = 0.0;
  for (const auto& v : block) {
    re += v.real();
    im += v.imag();
    re2 += static_cast<double>(v.real()) * v.real();
    im2 += static_cast<double>(v.imag()) * v.imag();
  }
  const double n = static_cast<double>(block.size());
  EXPECT_NEAR(re / n, 0.0, 3.0 * std::sqrt(src.variance() / 2.0 / n));
  EXPECT_NEAR(im / n, 0.0, 3.0 * std::sqrt(src.variance() / 2.0 / n));
  // I/Q power split evenly.
  EXPECT_NEAR(re2 / im2, 1.0, 0.05);
}

TEST(Awgn, Validation) {
  EXPECT_THROW(AwgnSource( units::Dbm{-90.0}, units::Hertz{0.0}, 2.4e6, 1), std::invalid_argument);
  EXPECT_THROW(AwgnSource( units::Dbm{-90.0}, units::Hertz{2e5}, 0.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fmbs::channel
