#include "channel/link_budget.h"

#include <gtest/gtest.h>

#include <cmath>

#include "channel/units.h"
#include "dsp/math_util.h"

namespace fmbs::channel {
namespace {

TEST(Units, FeetMeters) {
  EXPECT_NEAR(meters_from_feet(1.0), 0.3048, 1e-9);
  EXPECT_NEAR(feet_from_meters(meters_from_feet(20.0)), 20.0, 1e-9);
}

TEST(Units, Wavelength) {
  // ~3.16 m at 94.9 MHz.
  EXPECT_NEAR(wavelength_m(94.9e6), 3.159, 0.01);
}

TEST(Friis, MatchesClosedForm) {
  // FSPL(d, f) = 20 log10(4 pi d / lambda); at 1 m, 94.9 MHz: ~11.96 dB? No:
  // 4*pi*1/3.159 = 3.977 -> 20log10 = 11.99 dB.
  EXPECT_NEAR(friis_path_loss_db(1.0, 94.9e6), 12.0, 0.1);
  // +20 dB per decade of distance.
  EXPECT_NEAR(friis_path_loss_db(10.0, 94.9e6) - friis_path_loss_db(1.0, 94.9e6),
              20.0, 1e-6);
}

TEST(Friis, NearFieldClamped) {
  // Inside lambda/2pi the loss stops shrinking.
  const double f = 94.9e6;
  const double near = friis_path_loss_db(0.01, f);
  const double boundary = friis_path_loss_db(wavelength_m(f) / (2.0 * dsp::kPi), f);
  EXPECT_NEAR(near, boundary, 1e-9);
}

TEST(Friis, Validation) {
  EXPECT_THROW(friis_path_loss_db(0.0, 94.9e6), std::invalid_argument);
  EXPECT_THROW(friis_path_loss_db(1.0, 0.0), std::invalid_argument);
}

TEST(TwoRay, MatchesFreeSpaceUpClose) {
  // Well inside the first Fresnel zone the ground bounce barely matters.
  const double f = 94.9e6;
  const double friis = friis_path_loss_db(1.0, f);
  const double two_ray = two_ray_path_loss_db(1.0, f, 1.5, 1.2);
  EXPECT_NEAR(two_ray, friis, 6.0);
}

TEST(TwoRay, FourthPowerFalloffFarOut) {
  // Beyond the crossover the two-ray model decays ~40 dB/decade.
  const double f = 94.9e6;
  const double h = 1.5;
  const double crossover = 4.0 * h * h / wavelength_m(f);
  const double d1 = crossover * 10.0;
  const double d2 = crossover * 100.0;
  const double slope = two_ray_path_loss_db(d2, f, h, h) -
                       two_ray_path_loss_db(d1, f, h, h);
  EXPECT_NEAR(slope, 40.0, 6.0);
}

TEST(TwoRay, Validation) {
  EXPECT_THROW(two_ray_path_loss_db(0.0, 94.9e6, 1.5, 1.2),
               std::invalid_argument);
  EXPECT_THROW(two_ray_path_loss_db(1.0, 94.9e6, 0.0, 1.2),
               std::invalid_argument);
}

TEST(TwoRay, BudgetOptionChangesLoss) {
  LinkBudgetConfig free_space;
  LinkBudgetConfig two_ray;
  two_ray.use_two_ray = true;
  const double d = meters_from_feet(60.0);  // car range where ground matters
  const LinkBudget a = compute_link_budget(-20.0, -20.0, d, free_space);
  const LinkBudget b = compute_link_budget(-20.0, -20.0, d, two_ray);
  EXPECT_NE(a.backscatter_gain_db, b.backscatter_gain_db);
}

TEST(LinkBudget, DirectDefaultsToTagPower) {
  const LinkBudget b =
      compute_link_budget(-30.0, std::nan(""), meters_from_feet(4.0));
  EXPECT_NEAR(dsp::dbm_from_watts(b.direct_amplitude * b.direct_amplitude),
              -30.0, 1e-6);
}

TEST(LinkBudget, BackscatterLossGrowsWithDistance) {
  const LinkBudget near =
      compute_link_budget(-30.0, -30.0, meters_from_feet(2.0));
  const LinkBudget far =
      compute_link_budget(-30.0, -30.0, meters_from_feet(20.0));
  EXPECT_GT(near.backscatter_amplitude, far.backscatter_amplitude);
  // 10x the distance: 20 dB more loss.
  EXPECT_NEAR(near.backscatter_gain_db - far.backscatter_gain_db, 20.0, 0.5);
}

TEST(LinkBudget, ScalesLinearlyWithTagPower) {
  const LinkBudget a = compute_link_budget(-20.0, -20.0, 1.0);
  const LinkBudget b = compute_link_budget(-40.0, -40.0, 1.0);
  EXPECT_NEAR(
      dsp::db_from_amplitude_ratio(a.backscatter_amplitude / b.backscatter_amplitude),
      20.0, 1e-6);
  EXPECT_NEAR(a.backscatter_gain_db, b.backscatter_gain_db, 1e-9);
}

TEST(LinkBudget, ReflectionAmplitudeMatters) {
  LinkBudgetConfig ideal;
  ideal.reflection_amplitude = 1.0;
  LinkBudgetConfig lossy;
  lossy.reflection_amplitude = 0.5;
  const LinkBudget a = compute_link_budget(-30.0, -30.0, 2.0, ideal);
  const LinkBudget b = compute_link_budget(-30.0, -30.0, 2.0, lossy);
  EXPECT_NEAR(a.backscatter_gain_db - b.backscatter_gain_db, 6.02, 0.1);
}

TEST(LinkBudget, PlausibleMagnitudesAtPaperOperatingPoint) {
  // -30 dBm at the tag, 4 ft to the phone: the received backscatter power
  // (before the ~4 dB sideband split) should be tens of dB above the phone
  // noise floor — consistent with the paper's working system at this range.
  const LinkBudget b = compute_link_budget(-30.0, -30.0, meters_from_feet(4.0));
  const double p_rx_dbm =
      dsp::dbm_from_watts(b.backscatter_amplitude * b.backscatter_amplitude);
  EXPECT_GT(p_rx_dbm, ReceiverNoise::kPhoneDbmPer200kHz + 15.0);
  EXPECT_LT(p_rx_dbm, -30.0);  // must be below the power at the tag
}

}  // namespace
}  // namespace fmbs::channel
