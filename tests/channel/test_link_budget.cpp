#include "channel/link_budget.h"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "dsp/math_util.h"

namespace fmbs::channel {
namespace {

using namespace fmbs::units::literals;

TEST(Units, FeetMeters) {
  EXPECT_NEAR(units::Feet{1.0}.to_meters().raw(), 0.3048, 1e-9);
  EXPECT_NEAR(units::Feet{20.0}.to_meters().to_feet().raw(), 20.0, 1e-9);
}

TEST(Units, Wavelength) {
  // ~3.16 m at 94.9 MHz.
  EXPECT_NEAR((94.9_mhz).wavelength().raw(), 3.159, 0.01);
}

TEST(Friis, MatchesClosedForm) {
  // FSPL(d, f) = 20 log10(4 pi d / lambda); at 1 m, 94.9 MHz: ~11.96 dB? No:
  // 4*pi*1/3.159 = 3.977 -> 20log10 = 11.99 dB.
  EXPECT_NEAR(friis_path_loss(1.0_m, 94.9_mhz).raw(), 12.0, 0.1);
  // +20 dB per decade of distance.
  EXPECT_NEAR(
      (friis_path_loss(10.0_m, 94.9_mhz) - friis_path_loss(1.0_m, 94.9_mhz))
          .raw(),
      20.0, 1e-6);
}

TEST(Friis, NearFieldClamped) {
  // Inside lambda/2pi the loss stops shrinking.
  const units::Hertz f = 94.9_mhz;
  const units::Db near_loss = friis_path_loss(units::Meters{0.01}, f);
  const units::Db boundary = friis_path_loss(
      units::Meters{f.wavelength().raw() / (2.0 * dsp::kPi)}, f);
  EXPECT_NEAR(near_loss.raw(), boundary.raw(), 1e-9);
}

TEST(Friis, Validation) {
  EXPECT_THROW(friis_path_loss(units::Meters{0.0}, 94.9_mhz),
               std::invalid_argument);
  EXPECT_THROW(friis_path_loss(1.0_m, units::Hertz{0.0}),
               std::invalid_argument);
}

TEST(TwoRay, MatchesFreeSpaceUpClose) {
  // Well inside the first Fresnel zone the ground bounce barely matters.
  const units::Db friis = friis_path_loss(1.0_m, 94.9_mhz);
  const units::Db two_ray =
      two_ray_path_loss(1.0_m, 94.9_mhz, units::Meters{1.5}, units::Meters{1.2});
  EXPECT_NEAR(two_ray.raw(), friis.raw(), 6.0);
}

TEST(TwoRay, FourthPowerFalloffFarOut) {
  // Beyond the crossover the two-ray model decays ~40 dB/decade.
  const units::Hertz f = 94.9_mhz;
  const units::Meters h{1.5};
  const double crossover = 4.0 * h.raw() * h.raw() / f.wavelength().raw();
  const units::Meters d1{crossover * 10.0};
  const units::Meters d2{crossover * 100.0};
  const double slope =
      (two_ray_path_loss(d2, f, h, h) - two_ray_path_loss(d1, f, h, h)).raw();
  EXPECT_NEAR(slope, 40.0, 6.0);
}

TEST(TwoRay, Validation) {
  EXPECT_THROW(two_ray_path_loss(units::Meters{0.0}, 94.9_mhz,
                                 units::Meters{1.5}, units::Meters{1.2}),
               std::invalid_argument);
  EXPECT_THROW(two_ray_path_loss(1.0_m, 94.9_mhz, units::Meters{0.0},
                                 units::Meters{1.2}),
               std::invalid_argument);
}

TEST(TwoRay, BudgetOptionChangesLoss) {
  LinkBudgetConfig free_space;
  LinkBudgetConfig two_ray;
  two_ray.use_two_ray = true;
  const units::Meters d =
      units::Feet{60.0}.to_meters();  // car range where ground matters
  const LinkBudget a = compute_link_budget(-20.0_dbm, -20.0_dbm, d, free_space);
  const LinkBudget b = compute_link_budget(-20.0_dbm, -20.0_dbm, d, two_ray);
  EXPECT_NE(a.backscatter_gain.raw(), b.backscatter_gain.raw());
}

TEST(LinkBudget, DirectDefaultsToTagPower) {
  const LinkBudget b = compute_link_budget(-30.0_dbm, std::nullopt,
                                           units::Feet{4.0}.to_meters());
  EXPECT_NEAR(dsp::dbm_from_watts(b.direct_amplitude * b.direct_amplitude),
              -30.0, 1e-6);
}

TEST(LinkBudget, BackscatterLossGrowsWithDistance) {
  const LinkBudget near = compute_link_budget(-30.0_dbm, -30.0_dbm,
                                              units::Feet{2.0}.to_meters());
  const LinkBudget far = compute_link_budget(-30.0_dbm, -30.0_dbm,
                                             units::Feet{20.0}.to_meters());
  EXPECT_GT(near.backscatter_amplitude, far.backscatter_amplitude);
  // 10x the distance: 20 dB more loss.
  EXPECT_NEAR((near.backscatter_gain - far.backscatter_gain).raw(), 20.0, 0.5);
}

TEST(LinkBudget, ScalesLinearlyWithTagPower) {
  const LinkBudget a = compute_link_budget(-20.0_dbm, -20.0_dbm, 1.0_m);
  const LinkBudget b = compute_link_budget(-40.0_dbm, -40.0_dbm, 1.0_m);
  EXPECT_NEAR(
      dsp::db_from_amplitude_ratio(a.backscatter_amplitude / b.backscatter_amplitude),
      20.0, 1e-6);
  EXPECT_NEAR(a.backscatter_gain.raw(), b.backscatter_gain.raw(), 1e-9);
}

TEST(LinkBudget, ReflectionAmplitudeMatters) {
  LinkBudgetConfig ideal;
  ideal.reflection_amplitude = 1.0;
  LinkBudgetConfig lossy;
  lossy.reflection_amplitude = 0.5;
  const LinkBudget a = compute_link_budget(-30.0_dbm, -30.0_dbm, 2.0_m, ideal);
  const LinkBudget b = compute_link_budget(-30.0_dbm, -30.0_dbm, 2.0_m, lossy);
  EXPECT_NEAR((a.backscatter_gain - b.backscatter_gain).raw(), 6.02, 0.1);
}

TEST(LinkBudget, PlausibleMagnitudesAtPaperOperatingPoint) {
  // -30 dBm at the tag, 4 ft to the phone: the received backscatter power
  // (before the ~4 dB sideband split) should be tens of dB above the phone
  // noise floor — consistent with the paper's working system at this range.
  const LinkBudget b = compute_link_budget(-30.0_dbm, -30.0_dbm,
                                           units::Feet{4.0}.to_meters());
  const units::Dbm p_rx = units::Watts{b.backscatter_amplitude *
                                       b.backscatter_amplitude}
                              .to_dbm();
  EXPECT_GT(p_rx.raw(), (ReceiverNoise::kPhonePer200kHz + units::Db{15.0}).raw());
  EXPECT_LT(p_rx, -30.0_dbm);  // must be below the power at the tag
}

}  // namespace
}  // namespace fmbs::channel
