#!/usr/bin/env bash
# clang-tidy driver: runs the repo's .clang-tidy baseline over every library,
# test, bench, and example translation unit using the compilation database
# (CMAKE_EXPORT_COMPILE_COMMANDS is always on — see CMakeLists.txt).
#
#   tools/run_tidy.sh [build-dir] [-- extra clang-tidy args...]
#
# Exit status: 0 when the tree is warning-clean, non-zero otherwise (the
# baseline sets WarningsAsErrors: '*', so any finding is fatal). CI enforces
# this in the `tidy` job; locally, install clang-tidy >= 14 and point the
# script at any configured build directory.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift $(( $# > 0 ? 1 : 0 )) || true
if [[ "${1:-}" == "--" ]]; then shift; fi

TIDY_BIN="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY_BIN" >/dev/null 2>&1; then
  echo "error: '$TIDY_BIN' not found. Install clang-tidy (apt-get install" >&2
  echo "clang-tidy) or set CLANG_TIDY=/path/to/clang-tidy." >&2
  exit 2
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "error: $BUILD_DIR/compile_commands.json not found. Configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

# run-clang-tidy parallelizes when available; otherwise iterate serially so
# the script works with a bare clang-tidy install.
mapfile -t FILES < <(git ls-files 'src/*.cpp' 'tests/*.cpp' 'bench/*.cpp' 'examples/*.cpp')
echo "clang-tidy baseline over ${#FILES[@]} translation units ($TIDY_BIN)"

RUNNER="$(command -v run-clang-tidy || true)"
if [[ -n "$RUNNER" ]]; then
  # run-clang-tidy treats positionals as path regexes; literal paths match
  # themselves, so the file list passes through unchanged.
  exec "$RUNNER" -clang-tidy-binary "$TIDY_BIN" -p "$BUILD_DIR" -quiet "$@" \
    "${FILES[@]}"
fi
STATUS=0
for f in "${FILES[@]}"; do
  "$TIDY_BIN" -p "$BUILD_DIR" --quiet "$@" "$f" || STATUS=1
done
exit $STATUS
