#!/usr/bin/env python3
"""Determinism lint: enforce the repo's reproducibility invariants.

The engine's headline guarantee is that sweeps and scenario renders are
bit-identical at any thread count. That only holds if every source of
randomness is derived from (base_seed, grid_index) via core::derive_seed and
nothing consults wall clocks, hardware entropy, or unordered iteration order
in a result-producing path. This lint makes those invariants mechanical:

  rule id            what it rejects                              where
  ----------------   ------------------------------------------   ------------
  raw-rand           std::rand / rand() / srand()                 everywhere
  hardware-entropy   std::random_device                           everywhere
  wall-clock-seed    time(...) / system_clock / high_resolution   everywhere
                     (steady_clock is allowed in bench/ and
                     examples/ for *measuring* elapsed time —
                     never as a seed)
  underived-seed     an RNG engine constructed with a numeric     src/ bench/
                     literal or default-constructed (tests pin      examples/
                     literal seeds deliberately, so they are
                     exempt from this rule only)
  unordered-iter     range-for over a std::unordered_map/set      everywhere
                     declared in the same file (iteration order
                     is implementation-defined; sort first or
                     use an ordered container in result paths)

Escape hatches, both of which require a written justification:

  * an inline trailing comment on the flagged line:
        ... // fmbs-lint: allow(<rule-id>) <justification>
  * WHITELISTED_FILES below: the single sanctioned entry point for a rule,
    with the reason recorded next to it.

`--self-test` runs the lint over tools/lint_fixtures/ and verifies every
fixture produces exactly the violations its `// expect: <rule-id>` comments
declare — proving each violation class still fails, and that clean code
still passes.

Exit status: 0 clean, 1 violations found (or self-test mismatch).
"""

import argparse
import re
import sys
from pathlib import Path

# The allow()/expect: comment grammar and the fixture runner are shared with
# every other lint in tools/ (see lint_common.py) so the escape-hatch and
# self-test conventions stay identical across lints.
sys.path.insert(0, str(Path(__file__).resolve().parent))
import lint_common

# Directories scanned relative to the repo root, and which get the
# underived-seed rule (tests are exempt: a pinned literal seed is the whole
# point of a regression test, and test literals never reach library results).
SCAN_DIRS = ["src", "tests", "bench", "examples"]
UNDERIVED_SEED_DIRS = ["src", "bench", "examples"]
# steady_clock is legitimate for measuring elapsed wall time in benches and
# examples; it must never appear in src/ or tests/ where it could leak into
# results or seeds.
TIMING_OK_DIRS = ["bench", "examples"]

SOURCE_SUFFIXES = {".cpp", ".h", ".hpp", ".cc"}

# The single sanctioned entry point per rule, if any. Nothing is whitelisted
# today: core/rng.h derives seeds arithmetically and needs no entropy source.
# Add entries as ("relative/path", "rule-id"): "justification".
WHITELISTED_FILES = {}

ALLOW_RE = lint_common.ALLOW_RE
EXPECT_RE = lint_common.EXPECT_RE

# ---- Rule implementations ---------------------------------------------------

RAW_RAND_RE = re.compile(r"(?<![\w:])(std::)?(s?rand)\s*\(")
HARDWARE_ENTROPY_RE = re.compile(r"(?<![\w:])(std::)?random_device\b")
WALL_CLOCK_RE = re.compile(
    r"(?<![\w:])(std::)?time\s*\(\s*(NULL|nullptr|0|&)"
    r"|system_clock\b"
    r"|high_resolution_clock\b"
)
STEADY_CLOCK_RE = re.compile(r"steady_clock\b")
RNG_CTOR_RE = re.compile(
    r"\b(?:std::)?(mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
    r"ranlux\d+(?:_base)?|knuth_b)\s+\w+\s*[({]\s*([^)}]*)\s*[)}]"
)
# Member declarations (trailing-underscore names, per the codebase's style)
# are exempt: they are seeded in a constructor initializer list, where the
# ctor-argument rule in the owning .cpp applies.
RNG_DEFAULT_CTOR_RE = re.compile(
    r"\b(?:std::)?(mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
    r"ranlux\d+(?:_base)?|knuth_b)\s+\w*[^_\s]\s*;"
)
NUMERIC_LITERAL_RE = re.compile(r"^(0[xX][0-9a-fA-F']+|[0-9][0-9']*)([uUlL]*)$")
UNORDERED_DECL_RE = re.compile(r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)")


strip_line_comment = lint_common.strip_line_comment


def lint_file(path, rel, text):
    """Returns a list of (line_number, rule_id, message) violations."""
    top_dir = rel.parts[0] if rel.parts else ""
    check_underived = top_dir in UNDERIVED_SEED_DIRS
    timing_ok = top_dir in TIMING_OK_DIRS

    lines = text.splitlines()
    # Collect names declared as unordered containers anywhere in the file so
    # range-for statements over them can be flagged.
    unordered_names = set()
    for raw in lines:
        for m in UNORDERED_DECL_RE.finditer(strip_line_comment(raw)):
            unordered_names.add(m.group(1))
    unordered_iter_re = None
    if unordered_names:
        unordered_iter_re = re.compile(
            r"for\s*\(.*:\s*(?:\w+\.)?(" + "|".join(map(re.escape, unordered_names)) + r")\b"
        )

    violations = []

    def flag(lineno, rule, message):
        raw = lines[lineno - 1]
        allow = ALLOW_RE.search(raw)
        if allow and allow.group(1) == rule:
            if not allow.group(2):
                violations.append(
                    (lineno, rule, "allow() requires a justification after the rule id")
                )
            return
        if WHITELISTED_FILES.get((str(rel), rule)):
            return
        violations.append((lineno, rule, message))

    for lineno, raw in enumerate(lines, start=1):
        code = strip_line_comment(raw)
        if RAW_RAND_RE.search(code):
            flag(lineno, "raw-rand",
                 "std::rand/srand is global-state, non-reentrant randomness; "
                 "use std::mt19937_64 seeded via core::derive_seed")
        if HARDWARE_ENTROPY_RE.search(code):
            flag(lineno, "hardware-entropy",
                 "std::random_device breaks run-to-run reproducibility; "
                 "derive seeds from the experiment's base seed instead")
        if WALL_CLOCK_RE.search(code):
            flag(lineno, "wall-clock-seed",
                 "wall-clock time in simulation code makes results depend on "
                 "when they ran; seeds must come from core::derive_seed")
        if not timing_ok and STEADY_CLOCK_RE.search(code):
            flag(lineno, "wall-clock-seed",
                 "steady_clock is only sanctioned in bench/ and examples/ for "
                 "measuring elapsed time, never in src/ or tests/")
        if check_underived:
            for m in RNG_CTOR_RE.finditer(code):
                arg = m.group(2).strip()
                if arg == "" or NUMERIC_LITERAL_RE.match(arg):
                    flag(lineno, "underived-seed",
                         f"RNG engine seeded with '{arg or '<default>'}' — library "
                         "code must seed from a caller-provided seed routed "
                         "through core::derive_seed, never a baked-in literal")
            if RNG_DEFAULT_CTOR_RE.search(code):
                flag(lineno, "underived-seed",
                     "default-constructed RNG engine uses the shared default "
                     "seed; route an explicit core::derive_seed value instead")
        if unordered_iter_re and unordered_iter_re.search(code):
            flag(lineno, "unordered-iter",
                 "iterating an unordered container: visitation order is "
                 "implementation-defined and can leak into results; sort "
                 "keys first or use an ordered container")

    return violations


def scan_tree(root):
    all_violations = []
    for scan_dir in SCAN_DIRS:
        base = root / scan_dir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            rel = path.relative_to(root)
            text = path.read_text(encoding="utf-8", errors="replace")
            for lineno, rule, message in lint_file(path, rel, text):
                all_violations.append((rel, lineno, rule, message))
    return all_violations


def self_test(root):
    """Checks each fixture yields exactly its declared `// expect:` rules."""

    def lint_fixture(path, text):
        # Fixtures emulate library code: scan them as if they lived in src/
        # so every rule (including underived-seed) is active.
        rel = Path("src") / path.name
        return [rule for (_, rule, _) in lint_file(path, rel, text)]

    fixture_dir = root / "tools" / "lint_fixtures"
    return lint_common.run_fixture_self_test(
        fixture_dir.glob("*.cpp"), lint_fixture, "determinism-lint")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the lint rejects each fixture violation class")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.root)

    violations = scan_tree(args.root)
    for rel, lineno, rule, message in violations:
        print(f"{rel}:{lineno}: [{rule}] {message}")
    if violations:
        print(f"\n{len(violations)} determinism violation(s). Either fix them or, "
              "if genuinely sanctioned, add '// fmbs-lint: allow(<rule>) <why>'.",
              file=sys.stderr)
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
