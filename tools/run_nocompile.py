#!/usr/bin/env python3
"""Negative-compilation driver: a fixture must FAIL to compile, correctly.

The strong types in src/core/units.h promise that dimensional mistakes are
*compile errors*. A unit test cannot state that promise — code that does not
compile cannot be linked into a test binary — so each forbidden operation
lives in its own fixture under tests/nocompile/, and this driver proves the
compiler rejects it.

"Rejects" alone is not enough: a typo'd include also fails to compile. So a
fixture declares the error it is supposed to trigger:

    // expect-error: no match for .operator\+.

(one or more lines; each is a Python regex matched against the compiler's
stderr). The fixture passes iff compilation fails AND every declared pattern
matches. A fixture with no expect-error lines is a *control*: it must
compile cleanly, proving the harness can tell success from failure and that
the legal operations stay legal.

Usage: run_nocompile.py <compiler> <include_dir> <fixture.cpp> [extra flags…]
Exit status: 0 = fixture behaved as declared, 1 = it did not.
"""

import re
import subprocess
import sys
from pathlib import Path

EXPECT_ERROR_RE = re.compile(r"//\s*expect-error:\s*(\S.*)$", re.MULTILINE)


def main(argv):
    if len(argv) < 4:
        print(__doc__, file=sys.stderr)
        return 1
    compiler, include_dir, fixture = argv[1], argv[2], Path(argv[3])
    extra = argv[4:]

    text = fixture.read_text(encoding="utf-8")
    patterns = [m.group(1).strip() for m in EXPECT_ERROR_RE.finditer(text)]

    cmd = [compiler, "-std=c++20", "-fsyntax-only", "-I", include_dir,
           *extra, str(fixture)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    stderr = proc.stderr

    if not patterns:  # control fixture: must compile
        if proc.returncode == 0:
            print(f"OK (control): {fixture.name} compiles cleanly")
            return 0
        print(f"FAIL: control fixture {fixture.name} must compile but did not:\n"
              f"{stderr}", file=sys.stderr)
        return 1

    if proc.returncode == 0:
        print(f"FAIL: {fixture.name} compiled, but the operation it exercises "
              f"must be a type error", file=sys.stderr)
        return 1
    missing = [p for p in patterns if not re.search(p, stderr)]
    if missing:
        print(f"FAIL: {fixture.name} failed to compile, but not for the "
              f"declared reason(s). Unmatched pattern(s): {missing}\n"
              f"--- compiler stderr ---\n{stderr}", file=sys.stderr)
        return 1
    print(f"OK: {fixture.name} rejected for the declared reason "
          f"({len(patterns)} pattern(s) matched)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
