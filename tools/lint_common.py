#!/usr/bin/env python3
"""Conventions shared by the repo's source lints (determinism, units).

Every lint in tools/ speaks the same three-part protocol so contributors
learn it once:

  * escape hatch — an inline trailing comment on the flagged line:
        ... // fmbs-lint: allow(<rule-id>) <justification>
    The justification is mandatory; an allow() without one is itself a
    violation.

  * self-test fixtures — files under tools/lint_fixtures/ annotated with
        // expect: <rule-id>
    comments. `--self-test` runs the lint over its fixtures and verifies
    each produces exactly the violations it declares: every violation class
    still fails, and clean code still passes.

  * exit status — 0 clean, 1 violations found (or self-test mismatch).

This module owns the comment grammar and the fixture runner; the rule logic
stays in each lint.
"""

import re
import sys

ALLOW_RE = re.compile(r"//\s*fmbs-lint:\s*allow\(([a-z-]+)\)\s*(\S.*)?$")
EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z-]+)")


def strip_line_comment(line):
    """Drops a trailing // comment (naive: fine for this codebase's style)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def allowed(raw_line, rule):
    """Returns (is_allowed, problem_message_or_None) for a flagged line.

    A matching allow() with a justification suppresses the violation; a
    matching allow() *without* one converts it into a missing-justification
    violation instead of suppressing anything.
    """
    m = ALLOW_RE.search(raw_line)
    if not m or m.group(1) != rule:
        return False, None
    if not m.group(2):
        return False, "allow() requires a justification after the rule id"
    return True, None


def expected_rules(text):
    """The sorted `// expect:` rule ids a fixture declares."""
    return sorted(EXPECT_RE.findall(text))


def run_fixture_self_test(fixtures, lint_fixture, label):
    """Generic `--self-test`: each fixture must yield exactly its declared rules.

    `fixtures` is an iterable of pathlib.Paths; `lint_fixture(path, text)`
    returns the list of rule ids the lint produces for that fixture.
    Returns a process exit status (0 ok, 1 mismatch / no fixtures).
    """
    fixtures = sorted(fixtures)
    if not fixtures:
        print(f"self-test: no {label} fixtures found", file=sys.stderr)
        return 1
    failures = 0
    for path in fixtures:
        text = path.read_text(encoding="utf-8")
        expected = expected_rules(text)
        got = sorted(lint_fixture(path, text))
        if expected != got:
            failures += 1
            print(f"self-test FAIL {path.name}: expected {expected}, got {got}",
                  file=sys.stderr)
    if failures == 0:
        print(f"self-test OK: {len(fixtures)} fixtures behave as declared")
    return 1 if failures else 0
