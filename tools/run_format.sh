#!/usr/bin/env bash
# clang-format driver over every C++ file in src/ tests/ bench/ examples/
# (style: the committed .clang-format).
#
#   tools/run_format.sh          # rewrite files in place
#   tools/run_format.sh --check  # exit non-zero on drift (what CI runs)
set -euo pipefail

cd "$(dirname "$0")/.."

FORMAT_BIN="${CLANG_FORMAT:-clang-format}"
if ! command -v "$FORMAT_BIN" >/dev/null 2>&1; then
  echo "error: '$FORMAT_BIN' not found. Install clang-format (apt-get" >&2
  echo "install clang-format) or set CLANG_FORMAT=/path/to/clang-format." >&2
  exit 2
fi

mapfile -t FILES < <(git ls-files 'src/*.cpp' 'src/*.h' 'tests/*.cpp' 'tests/*.h' \
                                  'bench/*.cpp' 'examples/*.cpp')

if [[ "${1:-}" == "--check" ]]; then
  "$FORMAT_BIN" --dry-run -Werror "${FILES[@]}"
  echo "clang-format: ${#FILES[@]} files clean"
else
  "$FORMAT_BIN" -i "${FILES[@]}"
  echo "clang-format: ${#FILES[@]} files formatted"
fi
