#!/usr/bin/env python3
"""Units ratchet lint: drive raw-double unit parameters out of public APIs.

The strong types in src/core/units.h make a dBm-where-dB or feet-where-meters
swap a compile error — but only on the surfaces that use them. This lint
finds the surfaces that don't: function parameters declared as plain `double`
whose names carry a unit suffix

    *_hz  *_dbm  *_db  *_seconds  *_m  *_ft

in headers under src/. Each such parameter is a place where the type system
has been told nothing and the unit lives only in a naming convention.

rule id    what it rejects
--------   -------------------------------------------------------------
raw-unit   a `double` function parameter with a unit-suffixed name in a
           src/ header — declare it units::Hertz / units::Dbm / units::Db /
           units::Seconds / units::Meters / units::Feet instead

The count is *ratcheted*, not zeroed: tools/units_ratchet.txt pins the
allowed count per top-level src/ directory. Fully migrated directories
(src/channel, src/fm, src/tag, src/core) are pinned at 0 and must stay
there; the rest may only go down. When your change lowers a count, lower
the ratchet in the same commit (`--update-ratchet` rewrites the file).

Escape hatch (counts against nothing, requires a written justification):
    double cutoff_hz,  // fmbs-lint: allow(raw-unit) <why this stays raw>

`--self-test` runs the lint over tools/lint_fixtures/units/ and verifies
every fixture produces exactly the violations its `// expect: raw-unit`
comments declare (same convention as lint_determinism.py, shared via
lint_common.py).

Exit status: 0 clean, 1 ratchet regression / stale ratchet / self-test fail.
"""

import argparse
import re
import sys
from collections import defaultdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import lint_common

RULE = "raw-unit"
SCAN_GLOB = "*.h"
RATCHET_FILE = Path("tools") / "units_ratchet.txt"

UNIT_SUFFIXES = ("hz", "dbm", "db", "seconds", "m", "ft")
SUGGESTED = {
    "hz": "units::Hertz",
    "dbm": "units::Dbm",
    "db": "units::Db",
    "seconds": "units::Seconds",
    "m": "units::Meters",
    "ft": "units::Feet",
}

# A `double` token introducing a unit-suffixed name. Whether it is a
# *parameter* (vs a struct member or local) is decided by what follows the
# declarator: parameters are terminated by `,` or `)` — possibly after a
# default argument — while members and locals end in `;`.
DOUBLE_DECL_RE = re.compile(
    r"\bdouble\s+(\w+?_(" + "|".join(UNIT_SUFFIXES) + r"))\b")


def parameter_suffix_kind(code, m):
    """Returns the unit suffix if this declaration is a function parameter."""
    rest = code[m.end():]
    # `double foo_seconds(...)` is a function *returning* double, not a
    # parameter.
    if rest.lstrip().startswith("("):
        return None
    # Skip a default argument: everything up to the next top-level , or ) or ;
    depth = 0
    for ch in rest:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            if depth == 0:
                return m.group(2)  # closes the parameter list
            depth -= 1
        elif ch == "," and depth == 0:
            return m.group(2)
        elif ch == ";" and depth == 0:
            return None  # member or local declaration
    # Declaration continues on the next line; parameter lists in this
    # codebase break *after* the comma, so an open-ended line is a parameter
    # only if the line ends inside a paren context we cannot see. Treat a
    # trailing comma as parameter, anything else as not-a-parameter.
    return m.group(2) if rest.rstrip().endswith(",") else None


def lint_lines(lines):
    """Returns (lineno, rule, message) violations for one header's lines."""
    violations = []
    for lineno, raw in enumerate(lines, start=1):
        code = lint_common.strip_line_comment(raw)
        for m in DOUBLE_DECL_RE.finditer(code):
            suffix = parameter_suffix_kind(code, m)
            if suffix is None:
                continue
            ok, problem = lint_common.allowed(raw, RULE)
            if ok:
                continue
            message = problem or (
                f"raw double parameter '{m.group(1)}' carries its unit in the "
                f"name only; declare it {SUGGESTED[suffix]} (src/core/units.h)")
            violations.append((lineno, RULE, message))
    return violations


def scan_tree(root):
    """Returns {top_dir: [(rel, lineno, rule, message), ...]} over src/ headers."""
    by_dir = defaultdict(list)
    src = root / "src"
    for path in sorted(src.rglob(SCAN_GLOB)):
        rel = path.relative_to(root)
        top = str(Path(rel.parts[0]) / rel.parts[1]) if len(rel.parts) > 2 else str(rel.parent)
        text = path.read_text(encoding="utf-8", errors="replace")
        for lineno, rule, message in lint_lines(text.splitlines()):
            by_dir[top].append((rel, lineno, rule, message))
    return by_dir


def read_ratchet(root):
    ratchet = {}
    path = root / RATCHET_FILE
    if not path.is_file():
        return None
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        name, count = line.rsplit(None, 1)
        ratchet[name] = int(count)
    return ratchet


def write_ratchet(root, counts):
    lines = [
        "# Units ratchet: allowed raw-unit parameter counts per src/ directory.",
        "# Maintained by tools/lint_units.py (--update-ratchet). Counts only go",
        "# down; 0 means the directory's headers are fully migrated to the",
        "# strong types in src/core/units.h and must stay that way.",
        "",
    ]
    for name in sorted(counts):
        lines.append(f"{name} {counts[name]}")
    (root / RATCHET_FILE).write_text("\n".join(lines) + "\n", encoding="utf-8")


def self_test(root):
    def lint_fixture(path, text):
        del path
        return [rule for (_, rule, _) in lint_lines(text.splitlines())]

    fixture_dir = root / "tools" / "lint_fixtures" / "units"
    return lint_common.run_fixture_self_test(
        fixture_dir.glob("*.h"), lint_fixture, "units-lint")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the lint rejects each fixture violation class")
    parser.add_argument("--update-ratchet", action="store_true",
                        help="rewrite tools/units_ratchet.txt with current counts")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.root)

    by_dir = scan_tree(args.root)
    counts = {d: len(v) for d, v in by_dir.items()}

    if args.update_ratchet:
        # Keep explicit zeros for already-pinned directories so a future
        # regression in a clean directory is a ratchet violation, not a new
        # (unpinned) entry.
        ratchet = read_ratchet(args.root) or {}
        merged = {d: 0 for d in ratchet}
        merged.update(counts)
        write_ratchet(args.root, merged)
        print(f"units ratchet updated: {merged}")
        return 0

    ratchet = read_ratchet(args.root)
    if ratchet is None:
        print(f"missing {RATCHET_FILE}; run --update-ratchet once", file=sys.stderr)
        return 1

    status = 0
    for d in sorted(set(counts) | set(ratchet)):
        have = counts.get(d, 0)
        allowed = ratchet.get(d)
        if allowed is None:
            print(f"{d}: {have} raw-unit parameter(s) but no ratchet entry; "
                  f"add one via --update-ratchet", file=sys.stderr)
            status = 1
        elif have > allowed:
            print(f"{d}: {have} raw-unit parameter(s), ratchet allows {allowed} "
                  f"— new raw-double unit parameters are not accepted:",
                  file=sys.stderr)
            for rel, lineno, rule, message in by_dir[d]:
                print(f"  {rel}:{lineno}: [{rule}] {message}", file=sys.stderr)
            status = 1
        elif have < allowed:
            print(f"{d}: {have} raw-unit parameter(s), ratchet allows {allowed} "
                  f"— progress! tighten the ratchet in this commit "
                  f"(tools/lint_units.py --update-ratchet)", file=sys.stderr)
            status = 1
    if status == 0:
        total = sum(counts.values())
        print(f"units lint: clean ({total} raw-unit parameter(s) within ratchet)")
    return status


if __name__ == "__main__":
    sys.exit(main())
