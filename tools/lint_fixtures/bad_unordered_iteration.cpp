// Fixture: the unordered-iter violation class. unordered_map iteration order
// is implementation-defined (bucket layout varies with libstdc++ version and
// insertion history), so accumulating results in visitation order silently
// breaks bit-identity across toolchains.
// NOT compiled — consumed by tools/lint_determinism.py --self-test.
#include <string>
#include <unordered_map>

double total_power(const std::unordered_map<std::string, double>& by_station) {
  std::unordered_map<std::string, double> scaled = by_station;
  double sum = 0.0;
  // expect: unordered-iter
  for (const auto& entry : scaled) sum += entry.second;
  return sum;
}
