// Fixture: the raw-rand violation class. std::rand/srand share one hidden
// global state, so two sweep points racing through them are order-dependent.
// NOT compiled — consumed by tools/lint_determinism.py --self-test.
#include <cstdlib>

// expect: raw-rand
// expect: raw-rand
int noisy_sample() {
  srand(42);
  return rand() % 100;
}
