// Fixture: the hardware-entropy violation class. std::random_device yields
// different bits every run, so no golden trace could ever pin its output.
// NOT compiled — consumed by tools/lint_determinism.py --self-test.
#include <random>

// expect: hardware-entropy
std::uint64_t entropy_seed() {
  std::random_device device;
  return device();
}
