// Fixture: the escape hatch. A justified allow() suppresses the violation; a
// bare allow() without a justification is itself flagged.
#pragma once

namespace fmbs::fixture {

// Sanctioned: the DSP layer's untyped math keeps a raw cutoff.
void design_fir(double cutoff_hz);  // fmbs-lint: allow(raw-unit) dsp kernel boundary is untyped by design

// Not sanctioned: allow() with no reason is a violation, not an escape.
void lazy(double span_seconds);  // fmbs-lint: allow(raw-unit)
// expect: raw-unit

}  // namespace fmbs::fixture
