// Fixture: every unit-suffixed raw-double parameter shape the lint must
// catch — single param, multi-param lists, defaulted params, and a
// continuation line ending in a comma.
#pragma once

namespace fmbs::fixture {

void tune(double carrier_hz);                       // expect: raw-unit
void budget(double tag_power_dbm, double gain_db);  // expect: raw-unit
// expect: raw-unit
// (the two params on the line above are two distinct violations)

double snr_at(double distance_m = 1.0,   // expect: raw-unit
              double duration_seconds,   // expect: raw-unit
              double range_ft,           // expect: raw-unit
              int bits);

}  // namespace fmbs::fixture
