// Fixture: everything here is legal — strong-typed parameters, unit-suffixed
// struct members and locals (the ratchet tracks parameters only; members are
// migrated struct by struct), function names, and non-unit suffixes.
#pragma once

#include "core/units.h"

namespace fmbs::fixture {

void tune(units::Hertz carrier);
void budget(units::Dbm tag_power, units::Db gain);

struct Report {
  double start_seconds = 0.0;  // member, not a parameter
  double shift_hz = 0.0;       // member, not a parameter
};

double fsk_burst_seconds(int num_bits);  // function name, not a parameter

inline void helper() {
  double local_hz = 0.0;  // local, not a parameter
  (void)local_hz;
}

void unrelated(double gamma, double histogram);  // no unit suffix

}  // namespace fmbs::fixture
