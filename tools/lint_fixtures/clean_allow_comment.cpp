// Fixture: clean code and the sanctioned escape hatch. Derived seeds pass
// outright; a justified `fmbs-lint: allow(...)` comment suppresses its rule;
// an allow() with no justification is itself a violation.
// NOT compiled — consumed by tools/lint_determinism.py --self-test.
#include <cstdlib>
#include <random>

double derived_sample(std::uint64_t base_seed, std::uint64_t index) {
  // Emulates core::derive_seed routing — no rule fires.
  const std::uint64_t seed = base_seed ^ (index * 0x9e3779b97f4a7c15ULL);
  std::mt19937_64 rng(seed);
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng);
}

int justified_escape_hatch() {
  return rand();  // fmbs-lint: allow(raw-rand) fixture demonstrating the documented escape hatch
}

// expect: raw-rand
int unjustified_escape_hatch() {
  return rand();  // fmbs-lint: allow(raw-rand)
}
