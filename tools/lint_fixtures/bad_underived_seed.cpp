// Fixture: the underived-seed violation class. A literal or default seed in
// library code means every call site shares one RNG stream regardless of the
// sweep's base seed or grid index — results can never vary with the
// experiment seed, and parallel points correlate.
// NOT compiled — consumed by tools/lint_determinism.py --self-test.
#include <random>

// expect: underived-seed
double literal_seeded() {
  std::mt19937_64 rng(12345);
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng);
}

// expect: underived-seed
double default_seeded() {
  std::mt19937 rng;
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng);
}

// A correctly derived seed does NOT trip the rule.
double derived(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng);
}
