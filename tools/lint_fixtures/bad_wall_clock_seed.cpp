// Fixture: the wall-clock-seed violation class. Seeding from the clock makes
// a result depend on when the simulation ran — the exact opposite of the
// bit-identical-at-any-thread-count contract.
// NOT compiled — consumed by tools/lint_determinism.py --self-test.
#include <chrono>
#include <ctime>
#include <random>

// expect: wall-clock-seed
std::uint64_t clock_seed() { return static_cast<std::uint64_t>(time(nullptr)); }

// expect: wall-clock-seed
std::uint64_t chrono_seed() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

// expect: wall-clock-seed
std::uint64_t steady_seed() {
  // steady_clock is sanctioned only in bench/ + examples/ for elapsed-time
  // measurement; this fixture emulates src/ where it is banned outright.
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
