// Talking poster (paper section 6.1): a bus-stop poster with a copper-tape
// dipole backscatters a local news station. It simultaneously
//  * overlays a music snippet for anyone who tunes to the shifted channel,
//  * broadcasts a notification packet ("SIMPLY THREE - 50% OFF TONIGHT") at
//    100 bps that a phone app can decode from the same audio.
// Writes the received audio to /tmp so you can listen to the composite.
//
//   $ ./talking_poster [out_dir]
#include <cstdio>
#include <string>

#include "core/fmbs.h"

int main(int argc, char** argv) {
  using namespace fmbs;
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  // The paper's deployment: news station at 94.9 MHz, -35..-40 dBm at the
  // poster, user ~10 ft away with headphones.
  core::ExperimentPoint point;
  point.genre = audio::ProgramGenre::kNews;
  point.tag_power = units::Dbm{-37.0};
  point.distance = units::Feet{10.0};
  core::SystemConfig cfg = core::make_system(point);
  cfg.tag.antenna = tag::poster_dipole_antenna();  // the 40"x60" prototype

  // Content: 4 s of music, then the notification packet, looped by the tag.
  const double music_seconds = 4.0;
  const audio::MonoBuffer music = audio::synthesize_music(
      audio::pop_music_config(), music_seconds, fm::kAudioRate, 7);

  const std::string notice = "SIMPLY THREE - 50% OFF TONIGHT";
  const auto bits = tag::encode_frame(
      std::vector<std::uint8_t>(notice.begin(), notice.end()));
  const audio::MonoBuffer packet =
      tag::modulate_fsk(bits, tag::DataRate::k100bps, fm::kAudioRate);

  const audio::MonoBuffer content = audio::concat(music, packet);
  const auto baseband = tag::compose_overlay_baseband(content, core::kOverlayLevel);

  std::printf("poster: %s, %.1f s music + %zu-bit packet\n",
              cfg.tag.antenna.name.c_str(), music_seconds, bits.size());

  const core::SimulationResult sim =
      core::simulate(cfg, baseband, units::Seconds{content.duration_seconds() + 0.2});

  // The phone hears the composite: station news + poster music/packet.
  audio::write_wav(out_dir + "/talking_poster_received.wav",
                   sim.backscatter_rx.mono);
  audio::write_wav(out_dir + "/talking_poster_station_only.wav",
                   sim.station->program.mid());
  std::printf("wrote %s/talking_poster_received.wav (what the user hears)\n",
              out_dir.c_str());

  // Decode the notification from the tail of the capture.
  const auto music_samples =
      static_cast<std::size_t>(music_seconds * fm::kAudioRate);
  audio::MonoBuffer tail(
      std::vector<float>(
          sim.backscatter_rx.mono.samples.begin() +
              static_cast<std::ptrdiff_t>(music_samples),
          sim.backscatter_rx.mono.samples.end()),
      fm::kAudioRate);
  const auto demod =
      rx::demodulate_fsk(tail, tag::DataRate::k100bps, bits.size());
  const auto frame = tag::decode_frame(demod.bits);
  if (frame) {
    std::printf("notification decoded: \"%s\"\n",
                std::string(frame->begin(), frame->end()).c_str());
  } else {
    std::puts("notification not decoded");
    return 1;
  }

  // Audio quality of the overlaid music for the curious.
  const audio::MonoBuffer head(
      std::vector<float>(sim.backscatter_rx.mono.samples.begin(),
                         sim.backscatter_rx.mono.samples.begin() +
                             static_cast<std::ptrdiff_t>(music_samples)),
      fm::kAudioRate);
  std::printf("overlay music PESQ-like score: %.2f (paper: ~2 is clearly audible)\n",
              audio::pesq_like(music, head));
  return 0;
}
