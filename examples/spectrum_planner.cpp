// Spectrum planner: everything a deployment needs before hanging a poster.
// For each of the five surveyed cities it picks the ambient station to ride,
// chooses f_back per the paper's rule (nearest quiet empty channel), sizes
// the tag's power draw at that shift, and estimates battery life — then
// verifies the chosen shift end-to-end with a quick BER run. The per-city
// planning runs on the SweepRunner pool.
//
//   $ ./spectrum_planner
#include <cstdio>

#include "core/fmbs.h"

int main() {
  using namespace fmbs;

  std::puts("FM backscatter deployment planner\n");
  std::printf("%-9s %9s %10s %9s %11s %10s\n", "city", "listen", "backscatter",
              "shift", "tag power", "battery");

  struct Plan {
    bool usable = false;
    int listen_channel = 0;
    survey::ShiftChoice choice;
    tag::PowerBreakdown power;
    tag::BatteryLife life;
  };

  core::SweepRunner runner;
  const auto cities = survey::builtin_city_spectra();
  const auto plans = runner.map(cities, [](const survey::CitySpectrum& city) {
    Plan plan;
    // Ride the strongest detectable local station.
    plan.listen_channel = city.detectable_channels.front();
    double best_power = -1e9;
    for (std::size_t i = 0; i < city.detectable_channels.size(); ++i) {
      if (city.detectable_power_dbm[i] > best_power) {
        best_power = city.detectable_power_dbm[i];
        plan.listen_channel = city.detectable_channels[i];
      }
    }
    plan.choice = survey::choose_backscatter_shift(city, plan.listen_channel);
    if (plan.choice.target_channel < 0) return plan;
    plan.usable = true;
    tag::PowerModelConfig pm;
    pm.subcarrier = units::Hertz{std::abs(plan.choice.shift_hz)};
    plan.power = tag::tag_power(pm);
    plan.life = tag::battery_life(plan.power.total_uw, 225.0);
    return plan;
  });

  for (std::size_t i = 0; i < cities.size(); ++i) {
    const auto& city = cities[i];
    const Plan& plan = plans[i];
    if (!plan.usable) {
      std::printf("%-9s no usable shift found\n", city.name.c_str());
      continue;
    }
    std::printf("%-9s %6.1fMHz %7.1fMHz %+6.0fkHz %8.2fuW %7.1f yr\n",
                city.name.c_str(),
                survey::channel_frequency_hz(plan.listen_channel) / 1e6,
                survey::channel_frequency_hz(plan.choice.target_channel) / 1e6,
                plan.choice.shift_hz / 1e3, plan.power.total_uw,
                plan.life.years);
  }

  // End-to-end sanity check of a representative plan: Seattle-like shift.
  std::puts("\nverifying a 600 kHz shift end-to-end at -35 dBm, 8 ft...");
  core::ExperimentPoint point;
  point.genre = audio::ProgramGenre::kNews;
  point.tag_power = units::Dbm{-35.0};
  point.distance = units::Feet{8.0};
  const auto ber = core::run_overlay_ber(point, tag::DataRate::k100bps, 160);
  std::printf("100 bps BER: %.4f over %zu bits %s\n", ber.ber,
              ber.bits_compared, ber.ber < 0.01 ? "(link healthy)" : "(marginal)");
  return ber.ber < 0.05 ? 0 : 1;
}
