// City block (paper sections 1, 2, 6, 8): a real city's FM band serves a
// block of backscatter deployments. The scene is built from the band survey
// (survey::SpectrumDb, Fig. 4): the strongest detectable station is the one
// the posters backscatter — as the paper's posters reflect whichever ambient
// signal is strongest — and every other detectable station within the
// 2.4 MHz scene is rendered and superposed at its real channel offset, so
// adjacent-channel interference from co-resident stations is physical, not
// assumed. Posters then deploy only on the backscatter channels the survey
// shows to be clean (the paper's "choose f_back toward the lowest-power
// channel" rule); the contested channels are reported and skipped.
//
// `--walk` switches to the mobility demo (paper section 8's connected-city
// walk): the scene's two strongest stations anchor the two ends of the
// street, one tag carried across the block hands off between them on a
// segmented timeline, and its carrier-sense MAC defers around a fixed
// poster contending for the same channel.
//
// `--rds` is the paper's headline demo (sections 4.2 and 8, Fig. 3) on the
// same street: the courier's poster pushes an RDS RadioText ad ("SIMPLY
// THREE - TICKETS 50% OFF") over the 57 kHz subcarrier of its backscatter
// channel while walking the scene — handoff, LBT deferral around the fixed
// poster, and end-to-end RadioText recovery in one run, while a radio
// parked on the anchor station's own channel displays the survey-derived
// PS name any unmodified RDS radio would.
//
//   $ ./city_block
//   $ ./city_block --walk
//   $ ./city_block --rds
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/fmbs.h"

namespace {

int run_walk_mode(const fmbs::survey::CitySpectrum& city, int listen_channel,
                  fmbs::core::SurveySceneReport scene, bool rds);

}  // namespace

int main(int argc, char** argv) {
  using namespace fmbs;

  bool walk = false;
  bool rds = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--walk") == 0) {
      walk = true;
    } else if (std::strcmp(argv[i], "--rds") == 0) {
      rds = true;
    } else {
      std::printf("usage: %s [--walk | --rds]\n", argv[0]);
      return 2;
    }
  }

  // ---- The surveyed band, around its strongest street-level station. -------
  const survey::CitySpectrum city = survey::builtin_city_spectra()[2];  // Boston
  std::size_t strongest = 0;
  for (std::size_t i = 0; i < city.detectable_channels.size(); ++i) {
    if (city.detectable_power_dbm[i] > city.detectable_power_dbm[strongest]) {
      strongest = i;
    }
  }
  const int listen_channel = city.detectable_channels[strongest];

  core::SurveySceneReport scene =
      core::stations_from_survey_report(city, listen_channel);
  if (!scene.warnings.empty()) {
    // One line per scene build is enough for a demo; the full list is in
    // the report for deployments that want it.
    std::printf("survey: %zu detectable stations fall outside the scene "
                "and were skipped (e.g. %s)\n",
                scene.warnings.size(), scene.warnings.front().c_str());
  }
  if (walk || rds) {
    return run_walk_mode(city, listen_channel, std::move(scene), rds);
  }

  core::Scenario sc;
  sc.name = "city_block";
  sc.seed = 49;
  sc.duration = units::Seconds{0.4};
  sc.stations = std::move(scene.stations);

  std::printf("%s FM band around %.1f MHz: %zu co-resident stations in the "
              "2.4 MHz scene\n",
              city.name.c_str(),
              survey::channel_frequency_hz(listen_channel) / 1e6,
              sc.stations.size());
  for (const auto& st : sc.stations) {
    std::printf("  %-18s %+6.0f kHz  %6.1f dBm\n", st.name.c_str(),
                st.offset.raw() / 1000.0, st.power.raw());
  }

  // ---- Survey-driven channel choice for the posters. -----------------------
  // Candidate backscatter channels come from the planner; the survey ranks
  // them by ambient occupancy and the block deploys only on the quiet ones
  // (paper: "f_back ... chosen such that the backscatter transmission is
  // sent at the frequency with the lowest power ambient FM signal").
  const auto plan = tag::plan_subcarrier_channels(8);
  auto ambient_on = [&sc](double offset_hz) {
    double worst = -110.0;
    for (const auto& st : sc.stations) {
      if (std::abs(st.offset.raw() - offset_hz) < fm::kChannelSpacingHz / 2.0) {
        worst = std::max(worst, st.power.raw());
      }
    }
    return worst;
  };
  struct Candidate {
    tag::ChannelAssignment assignment;
    double ambient_dbm;
  };
  std::vector<Candidate> candidates;
  for (const auto& a : plan) {
    candidates.push_back({a, ambient_on(a.subcarrier.shift.raw())});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.ambient_dbm < b.ambient_dbm;
                   });
  constexpr double kQuietThresholdDbm = -60.0;  // well under backscatter power
  std::vector<Candidate> quiet;
  std::printf("\nbackscatter channel survey:\n");
  for (const auto& c : candidates) {
    const bool usable = c.ambient_dbm < kQuietThresholdDbm;
    std::printf("  %+5.0f kHz  ambient %6.1f dBm  %s\n",
                c.assignment.subcarrier.shift.raw() / 1000.0, c.ambient_dbm,
                usable ? "clear" : "occupied -> skipped");
    if (usable) quiet.push_back(c);
  }

  if (quiet.empty()) {
    std::printf("no clean backscatter channel in this scene — survey says "
                "the band is full here\n");
    return 1;
  }

  // ---- The block: one poster per clean channel, a phone near each. ---------
  const char* sites[8] = {"bus-stop poster", "concert poster",  "cafe sign",
                          "museum banner",   "bike-share sign", "bookstore ad",
                          "transit board",   "food-truck menu"};
  // Positions around a ~30 m block (meters).
  const core::ScenePosition tag_pos[8] = {{0, 0},  {12, 0},  {24, 0},  {30, 8},
                                          {30, 20}, {18, 28}, {6, 28},  {0, 16}};
  const std::size_t deployed = std::min<std::size_t>(quiet.size(), 8);
  for (std::size_t i = 0; i < deployed; ++i) {
    core::ScenarioTag t;
    t.name = sites[i];
    t.subcarrier = quiet[i].assignment.subcarrier;
    t.antenna = i % 2 == 0 ? tag::poster_dipole_antenna()
                           : tag::poster_bowtie_antenna();
    t.rate = tag::DataRate::k1600bps;
    t.num_bits = 192;
    t.packet_bits = 96;
    t.position = tag_pos[i];
    sc.tags.push_back(std::move(t));

    core::ScenarioReceiver rx =
        core::phone_listening_to(quiet[i].assignment.subcarrier);
    rx.name = "phone@" + std::string(sites[i]);
    rx.position = {tag_pos[i].x_m + 1.2 + 0.2 * static_cast<double>(i),
                   tag_pos[i].y_m + 1.0};
    sc.receivers.push_back(std::move(rx));
  }
  // A car at the curb decodes the bus-stop poster's channel from farther out.
  core::ScenarioReceiver car =
      core::car_listening_to(quiet[0].assignment.subcarrier);
  car.name = "car@curb";
  car.position = {4.0, -5.0};
  sc.receivers.push_back(std::move(car));

  std::printf("\ncity block: %zu posters on the %zu clean channels, "
              "%zu receivers, %zu ambient stations, %.1f s\n\n",
              sc.tags.size(), quiet.size(), sc.receivers.size(),
              sc.stations.size(), sc.duration.raw());

  const core::ScenarioResult result = core::ScenarioEngine().run(sc);

  std::printf("%-18s %10s %8s %8s %6s %9s %8s\n", "tag", "channel", "rx_dBm",
              "errors", "PER", "goodput", "via");
  for (const core::TagLinkReport& link : result.best_per_tag) {
    const core::ScenarioTag& t = sc.tags[link.tag_index];
    std::printf("%-18s %+7.0fkHz %8.1f %5zu/%-3zu %5.2f %7.0fbps %8s\n",
                t.name.c_str(), t.subcarrier.shift.raw() / 1000.0,
                link.backscatter_rx_power_dbm, link.burst.ber.bit_errors,
                link.burst.ber.bits_compared, link.burst.per, link.goodput_bps,
                sc.receivers[link.receiver_index].kind == core::ReceiverKind::kCar
                    ? "car"
                    : "phone");
  }
  std::printf("\naggregate goodput: %.0f bps across the block\n",
              result.aggregate_goodput_bps);

  // The car also hears the bus-stop poster: compare its link with the
  // pedestrian's (two receivers, one tag, one shared scene).
  for (const auto& link : result.receivers.back().links) {
    std::printf("car's own copy of \"%s\": %zu bit errors (vs phone's best)\n",
                sc.tags[link.tag_index].name.c_str(),
                link.burst.ber.bit_errors);
  }

  // Anything above a couple percent BER on a best link means the survey's
  // channel choice failed — report it like a demo should.
  for (const auto& link : result.best_per_tag) {
    if (link.burst.ber.ber > 0.05) {
      std::printf("WARNING: %s BER %.3f — coexistence degraded\n",
                  sc.tags[link.tag_index].name.c_str(), link.burst.ber.ber);
      return 1;
    }
  }
  std::printf("all %zu tags decoded across the shared city spectrum\n",
              result.best_per_tag.size());
  return 0;
}

namespace {

/// The mobility demo: the scene's two strongest stations anchor the street
/// ends, a courier tag walks the block on a segmented timeline (handoff),
/// and its carrier-sense MAC defers around a fixed poster on the same
/// channel. With `rds` the courier's payload is the paper's RadioText ad
/// instead of FSK bits, and a radio parked on the west anchor's own channel
/// displays the scene station's PS name.
int run_walk_mode(const fmbs::survey::CitySpectrum& city, int listen_channel,
                  fmbs::core::SurveySceneReport scene, bool rds) {
  using namespace fmbs;

  constexpr const char* kAdText = "SIMPLY THREE - TICKETS 50% OFF";
  std::printf("%s %s: %zu stations in the scene around %.1f MHz\n",
              city.name.c_str(), rds ? "RDS walk" : "walk",
              scene.stations.size(),
              survey::channel_frequency_hz(listen_channel) / 1e6);

  // ---- Anchor the two strongest stations at the street ends. ---------------
  std::vector<std::size_t> by_power(scene.stations.size());
  for (std::size_t i = 0; i < by_power.size(); ++i) by_power[i] = i;
  std::stable_sort(by_power.begin(), by_power.end(),
                   [&](std::size_t a, std::size_t b) {
                     return scene.stations[a].power.raw() >
                            scene.stations[b].power.raw();
                   });
  if (by_power.size() < 2) {
    std::printf("walk mode needs at least two scene stations\n");
    return 1;
  }
  core::ScenarioStation& west = scene.stations[by_power[0]];
  core::ScenarioStation& east = scene.stations[by_power[1]];
  west.position = core::ScenePosition{-80.0, 0.0};
  east.position = core::ScenePosition{80.0, 0.0};
  // Street-level powers within a few dB make the handoff geometric rather
  // than foregone; keep the surveyed ordering, cap the gap. The RDS walk
  // caps it tighter: its 0.7 s RadioText burst must finish on the west
  // channel before the coverage boundary (which a larger gap pushes east)
  // is crossed.
  const double max_gap_db = rds ? 2.0 : 4.0;
  if (east.power.raw() < west.power.raw() - max_gap_db) {
    std::printf("(east anchor %s raised %.1f dB so the walk crosses the "
                "coverage boundary mid-block)\n",
                east.name.c_str(),
                west.power.raw() - max_gap_db - east.power.raw());
    east.power = units::Dbm{west.power.raw() - max_gap_db};
  }
  std::printf("anchors: %-18s west end  %6.1f dBm\n         %-18s east end  "
              "%6.1f dBm\n",
              west.name.c_str(), west.power.raw(), east.name.c_str(),
              east.power.raw());

  // ---- The walk scenario. --------------------------------------------------
  // The RDS walk is longer (the RadioText burst alone is ~0.7 s) and starts
  // farther west, so the whole ad goes out on the west channel before the
  // handoff boundary.
  core::Scenario sc;
  sc.name = rds ? "city_rds" : "city_walk";
  sc.seed = 50;
  sc.duration = units::Seconds{rds ? 1.4 : 0.8};
  sc.timeline.segment = units::Seconds{0.1};  // 0.1 s geometry re-evaluation
  sc.stations = std::move(scene.stations);

  core::ScenarioTag courier;
  courier.name = rds ? "courier ad-poster" : "courier badge";
  courier.subcarrier.shift = units::Hertz{600e3};
  if (rds) {
    courier.rds_radiotext = kAdText;  // 8 groups at 1187.5 bps ~ 0.70 s
    courier.position = {-40.0, 0.0};
    courier.waypoints = {{20.0, 0.0}};  // across the block
  } else {
    courier.rate = tag::DataRate::k1600bps;
    courier.num_bits = 192;
    courier.packet_bits = 96;
    courier.position = {-30.0, 0.0};
    courier.waypoints = {{30.0, 0.0}};  // across the block
  }
  courier.distance_override = units::Feet{4.0};  // the phone walks along
  courier.start = units::Seconds{0.03};
  courier.mac.kind = tag::MacKind::kCarrierSense;

  core::ScenarioTag poster;  // fixed neighbor contending on the same channel
  poster.name = "bus-stop poster";
  poster.subcarrier = courier.subcarrier;
  poster.rate = tag::DataRate::k1600bps;
  poster.num_bits = 128;
  poster.position = {-25.0, 2.0};
  poster.distance_override = units::Feet{10.0};
  poster.start = units::Seconds{0.0};  // pure ALOHA: bursts right away
  sc.tags = {courier, poster};

  // The pedestrian's phone walks with the courier, tuned to the west
  // anchor's backscatter channel (where the deferred burst goes out).
  core::ScenarioReceiver phone;
  phone.name = "pedestrian phone";
  phone.tune_offset = units::Hertz{west.offset.raw() + courier.subcarrier.shift.raw()};
  phone.position = {courier.position.x_m, 1.0};
  phone.waypoints = {{courier.waypoints[0].x_m, 1.0}};
  sc.receivers = {phone};
  if (rds) {
    // A radio parked on the west anchor's own channel: what any unmodified
    // RDS radio in the scene displays is the survey-derived PS name.
    core::ScenarioReceiver parked;
    parked.name = "parked radio";
    parked.tune_offset = units::Hertz{west.offset.raw()};
    parked.position = {-35.0, 3.0};
    sc.receivers.push_back(std::move(parked));
  }

  const core::ScenarioResult result =
      core::ScenarioEngine({.keep_captures = false}).run(sc);

  // ---- Per-segment walk log. -----------------------------------------------
  std::printf("\n%-14s %-18s %-10s\n", "segment", "courier reflects",
              "on air");
  const double courier_burst_seconds =
      rds ? static_cast<double>(
                fm::serialize_groups(
                    fm::make_radiotext_groups(sc.tags[0].rds_radiotext))
                    .size()) /
                fm::kRdsBitRateHz
          : static_cast<double>(sc.tags[0].num_bits) /
                tag::bits_per_second(sc.tags[0].rate);
  for (const core::ScenarioSegmentReport& seg : result.segments) {
    const auto s = static_cast<std::size_t>(seg.selected_station[0]);
    const bool on_air =
        result.mac[0].transmitted &&
        result.mac[0].start_seconds < seg.end_seconds &&
        result.mac[0].start_seconds + courier_burst_seconds >
            seg.start_seconds;
    std::printf("%5.2f-%4.2f s  %-18s %-10s\n", seg.start_seconds,
                seg.end_seconds, sc.stations[s].name.c_str(),
                on_air ? "burst" : "-");
  }
  int handoffs = 0;
  for (std::size_t k = 1; k < result.segments.size(); ++k) {
    if (result.segments[k].selected_station[0] !=
        result.segments[k - 1].selected_station[0]) {
      ++handoffs;
    }
  }

  // ---- MAC + link outcome. -------------------------------------------------
  for (std::size_t t = 0; t < sc.tags.size(); ++t) {
    const core::TagMacReport& mac = result.mac[t];
    std::printf("\n%s [%s]: %s", sc.tags[t].name.c_str(),
                tag::to_string(sc.tags[t].mac.kind),
                mac.transmitted ? "transmitted" : "stayed silent");
    if (mac.transmitted) std::printf(" at t=%.2f s", mac.start_seconds);
    std::printf(", %zu deferral%s", mac.deferrals,
                mac.deferrals == 1 ? "" : "s");
    if (std::isfinite(mac.last_sensed_dbm)) {
      std::printf(" (last sensed %.1f dBm)", mac.last_sensed_dbm);
    }
    std::printf("\n");
  }
  for (const core::TagLinkReport& link : result.best_per_tag) {
    if (link.rds.has_value()) {
      std::printf("%s: RadioText \"%s\", BLER %.3f (%zu/%zu blocks clean)\n",
                  sc.tags[link.tag_index].name.c_str(),
                  link.rds->radiotext.c_str(), link.rds->bler,
                  link.rds->blocks_ok,
                  link.rds->blocks_ok + link.rds->blocks_failed);
    } else {
      std::printf("%s: %zu/%zu bit errors, PER %.2f, goodput %.0f bps\n",
                  sc.tags[link.tag_index].name.c_str(),
                  link.burst.ber.bit_errors, link.burst.ber.bits_compared,
                  link.burst.per, link.goodput_bps);
    }
  }
  if (rds && result.receivers.size() > 1 &&
      result.receivers[1].station_rds.has_value()) {
    std::printf("parked radio on %s: PS \"%s\"\n", west.name.c_str(),
                result.receivers[1].station_rds->ps_name.c_str());
  }
  std::printf("\n%d handoff%s along the walk; end-to-end goodput %.0f bps\n",
              handoffs, handoffs == 1 ? "" : "s",
              result.aggregate_goodput_bps);

  if (handoffs == 0) {
    std::printf("WARNING: the walk never crossed a coverage boundary\n");
    return 1;
  }
  if (result.mac[0].deferrals == 0) {
    std::printf("WARNING: the courier never had to defer — no contention\n");
    return 1;
  }
  for (const core::TagLinkReport& link : result.best_per_tag) {
    if (link.tag_index != 0) continue;
    if (rds) {
      if (!link.rds.has_value() || link.rds->radiotext != kAdText) {
        std::printf("WARNING: the RadioText ad did not survive the walk\n");
        return 1;
      }
    } else if (link.burst.ber.ber > 0.05) {
      std::printf("WARNING: courier BER %.3f — the deferred burst was not "
                  "clean\n", link.burst.ber.ber);
      return 1;
    }
  }
  if (rds) {
    if (result.receivers.size() < 2 ||
        !result.receivers[1].station_rds.has_value() ||
        result.receivers[1].station_rds->ps_name != west.config.rds_ps_name) {
      std::printf("WARNING: the parked radio did not recover the anchor "
                  "station's PS name\n");
      return 1;
    }
  }
  return 0;
}

}  // namespace
