// City block (paper sections 1, 2, 6, 8): a real city's FM band serves a
// block of backscatter deployments. The scene is built from the band survey
// (survey::SpectrumDb, Fig. 4): the strongest detectable station is the one
// the posters backscatter — as the paper's posters reflect whichever ambient
// signal is strongest — and every other detectable station within the
// 2.4 MHz scene is rendered and superposed at its real channel offset, so
// adjacent-channel interference from co-resident stations is physical, not
// assumed. Posters then deploy only on the backscatter channels the survey
// shows to be clean (the paper's "choose f_back toward the lowest-power
// channel" rule); the contested channels are reported and skipped.
//
//   $ ./city_block
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/fmbs.h"

int main() {
  using namespace fmbs;

  // ---- The surveyed band, around its strongest street-level station. -------
  const survey::CitySpectrum city = survey::builtin_city_spectra()[2];  // Boston
  std::size_t strongest = 0;
  for (std::size_t i = 0; i < city.detectable_channels.size(); ++i) {
    if (city.detectable_power_dbm[i] > city.detectable_power_dbm[strongest]) {
      strongest = i;
    }
  }
  const int listen_channel = city.detectable_channels[strongest];

  core::Scenario sc;
  sc.name = "city_block";
  sc.seed = 49;
  sc.duration_seconds = 0.4;
  sc.stations = core::stations_from_survey(city, listen_channel);

  std::printf("%s FM band around %.1f MHz: %zu co-resident stations in the "
              "2.4 MHz scene\n",
              city.name.c_str(),
              survey::channel_frequency_hz(listen_channel) / 1e6,
              sc.stations.size());
  for (const auto& st : sc.stations) {
    std::printf("  %-18s %+6.0f kHz  %6.1f dBm\n", st.name.c_str(),
                st.offset_hz / 1000.0, st.power_dbm);
  }

  // ---- Survey-driven channel choice for the posters. -----------------------
  // Candidate backscatter channels come from the planner; the survey ranks
  // them by ambient occupancy and the block deploys only on the quiet ones
  // (paper: "f_back ... chosen such that the backscatter transmission is
  // sent at the frequency with the lowest power ambient FM signal").
  const auto plan = tag::plan_subcarrier_channels(8);
  auto ambient_on = [&sc](double offset_hz) {
    double worst = -110.0;
    for (const auto& st : sc.stations) {
      if (std::abs(st.offset_hz - offset_hz) < fm::kChannelSpacingHz / 2.0) {
        worst = std::max(worst, st.power_dbm);
      }
    }
    return worst;
  };
  struct Candidate {
    tag::ChannelAssignment assignment;
    double ambient_dbm;
  };
  std::vector<Candidate> candidates;
  for (const auto& a : plan) {
    candidates.push_back({a, ambient_on(a.subcarrier.shift_hz)});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.ambient_dbm < b.ambient_dbm;
                   });
  constexpr double kQuietThresholdDbm = -60.0;  // well under backscatter power
  std::vector<Candidate> quiet;
  std::printf("\nbackscatter channel survey:\n");
  for (const auto& c : candidates) {
    const bool usable = c.ambient_dbm < kQuietThresholdDbm;
    std::printf("  %+5.0f kHz  ambient %6.1f dBm  %s\n",
                c.assignment.subcarrier.shift_hz / 1000.0, c.ambient_dbm,
                usable ? "clear" : "occupied -> skipped");
    if (usable) quiet.push_back(c);
  }

  if (quiet.empty()) {
    std::printf("no clean backscatter channel in this scene — survey says "
                "the band is full here\n");
    return 1;
  }

  // ---- The block: one poster per clean channel, a phone near each. ---------
  const char* sites[8] = {"bus-stop poster", "concert poster",  "cafe sign",
                          "museum banner",   "bike-share sign", "bookstore ad",
                          "transit board",   "food-truck menu"};
  // Positions around a ~30 m block (meters).
  const core::ScenePosition tag_pos[8] = {{0, 0},  {12, 0},  {24, 0},  {30, 8},
                                          {30, 20}, {18, 28}, {6, 28},  {0, 16}};
  const std::size_t deployed = std::min<std::size_t>(quiet.size(), 8);
  for (std::size_t i = 0; i < deployed; ++i) {
    core::ScenarioTag t;
    t.name = sites[i];
    t.subcarrier = quiet[i].assignment.subcarrier;
    t.antenna = i % 2 == 0 ? tag::poster_dipole_antenna()
                           : tag::poster_bowtie_antenna();
    t.rate = tag::DataRate::k1600bps;
    t.num_bits = 192;
    t.packet_bits = 96;
    t.position = tag_pos[i];
    sc.tags.push_back(std::move(t));

    core::ScenarioReceiver rx =
        core::phone_listening_to(quiet[i].assignment.subcarrier);
    rx.name = "phone@" + std::string(sites[i]);
    rx.position = {tag_pos[i].x_m + 1.2 + 0.2 * static_cast<double>(i),
                   tag_pos[i].y_m + 1.0};
    sc.receivers.push_back(std::move(rx));
  }
  // A car at the curb decodes the bus-stop poster's channel from farther out.
  core::ScenarioReceiver car =
      core::car_listening_to(quiet[0].assignment.subcarrier);
  car.name = "car@curb";
  car.position = {4.0, -5.0};
  sc.receivers.push_back(std::move(car));

  std::printf("\ncity block: %zu posters on the %zu clean channels, "
              "%zu receivers, %zu ambient stations, %.1f s\n\n",
              sc.tags.size(), quiet.size(), sc.receivers.size(),
              sc.stations.size(), sc.duration_seconds);

  const core::ScenarioResult result = core::ScenarioEngine().run(sc);

  std::printf("%-18s %10s %8s %8s %6s %9s %8s\n", "tag", "channel", "rx_dBm",
              "errors", "PER", "goodput", "via");
  for (const core::TagLinkReport& link : result.best_per_tag) {
    const core::ScenarioTag& t = sc.tags[link.tag_index];
    std::printf("%-18s %+7.0fkHz %8.1f %5zu/%-3zu %5.2f %7.0fbps %8s\n",
                t.name.c_str(), t.subcarrier.shift_hz / 1000.0,
                link.backscatter_rx_power_dbm, link.burst.ber.bit_errors,
                link.burst.ber.bits_compared, link.burst.per, link.goodput_bps,
                sc.receivers[link.receiver_index].kind == core::ReceiverKind::kCar
                    ? "car"
                    : "phone");
  }
  std::printf("\naggregate goodput: %.0f bps across the block\n",
              result.aggregate_goodput_bps);

  // The car also hears the bus-stop poster: compare its link with the
  // pedestrian's (two receivers, one tag, one shared scene).
  for (const auto& link : result.receivers.back().links) {
    std::printf("car's own copy of \"%s\": %zu bit errors (vs phone's best)\n",
                sc.tags[link.tag_index].name.c_str(),
                link.burst.ber.bit_errors);
  }

  // Anything above a couple percent BER on a best link means the survey's
  // channel choice failed — report it like a demo should.
  for (const auto& link : result.best_per_tag) {
    if (link.burst.ber.ber > 0.05) {
      std::printf("WARNING: %s BER %.3f — coexistence degraded\n",
                  sc.tags[link.tag_index].name.c_str(), link.burst.ber.ber);
      return 1;
    }
  }
  std::printf("all %zu tags decoded across the shared city spectrum\n",
              result.best_per_tag.size());
  return 0;
}
