// City block (paper sections 1, 6, 8): one ambient news station serves a
// whole block of backscatter deployments at once — eight posters and street
// signs, each on its own planner-assigned backscatter channel, decoded by
// the pedestrians' phones standing near them and by a car rolling past.
// Everything shares ONE simulated RF scene: every tag's reflection lands in
// every receiver's antenna, so adjacent-channel coexistence is physical,
// not assumed.
//
//   $ ./city_block
#include <cstdio>
#include <string>

#include "core/fmbs.h"

int main() {
  using namespace fmbs;

  // Eight deployments around the block, on the 8 disjoint channels the
  // planner can fit in the scene (SSB switches unlock the negative ones).
  const auto plan = tag::plan_subcarrier_channels(8);
  const char* sites[8] = {"bus-stop poster", "concert poster",  "cafe sign",
                          "museum banner",   "bike-share sign", "bookstore ad",
                          "transit board",   "food-truck menu"};
  // Positions around a ~30 m block (meters).
  const core::ScenePosition tag_pos[8] = {{0, 0},  {12, 0},  {24, 0},  {30, 8},
                                          {30, 20}, {18, 28}, {6, 28},  {0, 16}};

  core::Scenario sc;
  sc.name = "city_block";
  sc.station.program.genre = audio::ProgramGenre::kNews;
  sc.station.program.stereo = false;
  sc.station.seed = 49;  // the 94.9 MHz news station of the paper
  sc.seed = 49;
  sc.duration_seconds = 0.4;

  for (std::size_t i = 0; i < 8; ++i) {
    core::ScenarioTag t;
    t.name = sites[i];
    t.subcarrier = plan[i].subcarrier;
    t.antenna = i % 2 == 0 ? tag::poster_dipole_antenna()
                           : tag::poster_bowtie_antenna();
    t.rate = tag::DataRate::k1600bps;
    t.num_bits = 192;
    t.packet_bits = 96;
    t.tag_power_dbm = -33.0;  // urban ambient (paper Fig. 2: -30 to -40 dBm)
    t.position = tag_pos[i];
    sc.tags.push_back(std::move(t));
  }

  // A pedestrian's phone next to each deployment (1.5-3 m off), plus a car
  // at the curb decoding the bus-stop poster's channel from farther out.
  for (std::size_t i = 0; i < 8; ++i) {
    core::ScenarioReceiver rx = core::phone_listening_to(plan[i].subcarrier);
    rx.name = "phone@" + std::string(sites[i]);
    rx.position = {tag_pos[i].x_m + 1.2 + 0.2 * static_cast<double>(i),
                   tag_pos[i].y_m + 1.0};
    sc.receivers.push_back(std::move(rx));
  }
  core::ScenarioReceiver car = core::car_listening_to(plan[0].subcarrier);
  car.name = "car@curb";
  car.position = {4.0, -5.0};
  sc.receivers.push_back(std::move(car));

  std::printf("city block: %zu tags on %zu channels, %zu receivers, %.1f s\n\n",
              sc.tags.size(), sc.tags.size(), sc.receivers.size(),
              sc.duration_seconds);

  const core::ScenarioResult result = core::ScenarioEngine().run(sc);

  std::printf("%-18s %10s %8s %8s %6s %9s %8s\n", "tag", "channel", "rx_dBm",
              "errors", "PER", "goodput", "via");
  for (const core::TagLinkReport& link : result.best_per_tag) {
    const core::ScenarioTag& t = sc.tags[link.tag_index];
    std::printf("%-18s %+7.0fkHz %8.1f %5zu/%-3zu %5.2f %7.0fbps %8s\n",
                t.name.c_str(), t.subcarrier.shift_hz / 1000.0,
                link.backscatter_rx_power_dbm, link.burst.ber.bit_errors,
                link.burst.ber.bits_compared, link.burst.per, link.goodput_bps,
                sc.receivers[link.receiver_index].kind == core::ReceiverKind::kCar
                    ? "car"
                    : "phone");
  }
  std::printf("\naggregate goodput: %.0f bps across the block\n",
              result.aggregate_goodput_bps);

  // The car also hears the bus-stop poster: compare its link with the
  // pedestrian's (two receivers, one tag, one shared scene).
  for (const auto& link : result.receivers.back().links) {
    std::printf("car's own copy of \"%s\": %zu bit errors (vs phone's best)\n",
                sc.tags[link.tag_index].name.c_str(),
                link.burst.ber.bit_errors);
  }

  // Anything above a couple percent BER on a best link means the block's
  // channelization failed — report it like a demo should.
  for (const auto& link : result.best_per_tag) {
    if (link.burst.ber.ber > 0.05) {
      std::printf("WARNING: %s BER %.3f — coexistence degraded\n",
                  sc.tags[link.tag_index].name.c_str(), link.burst.ber.ber);
      return 1;
    }
  }
  std::printf("all %zu tags decoded across the shared spectrum\n",
              result.best_per_tag.size());
  return 0;
}
