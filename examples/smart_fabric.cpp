// Smart fabric (paper section 6.2): a t-shirt with a machine-sewn meander
// dipole of conductive thread streams vital signs (heart rate, breathing
// rate, step count) to the wearer's phone while standing, walking and
// running. Sensor readings are packed into CRC frames and sent at 100 bps
// (robust) with a 1.6 kbps + 2x MRC comparison, over a live news broadcast.
//
//   $ ./smart_fabric
#include <cstdio>
#include <cstdint>
#include <vector>

#include "core/fmbs.h"

namespace {

using namespace fmbs;

// A vital-signs sample as the shirt's sensor hub would report it.
struct Vitals {
  std::uint8_t heart_rate_bpm;
  std::uint8_t breaths_per_min;
  std::uint16_t steps;
};

std::vector<std::uint8_t> pack(const Vitals& v) {
  return {v.heart_rate_bpm, v.breaths_per_min,
          static_cast<std::uint8_t>(v.steps >> 8),
          static_cast<std::uint8_t>(v.steps & 0xFF)};
}

bool stream_vitals(channel::Mobility mobility, const char* label,
                   const Vitals& vitals) {
  core::ExperimentPoint point;
  point.genre = audio::ProgramGenre::kNews;
  point.tag_power = units::Dbm{-37.5};  // outdoor ambient level (paper section 6.2)
  point.distance = units::Feet{2.0};    // shirt to pocket/hand
  core::SystemConfig cfg = core::make_system(point);
  cfg.tag.antenna = tag::tshirt_meander_antenna(/*worn=*/true);
  cfg.scene.fading = channel::fading_for_mobility(mobility);

  const auto bits = tag::encode_frame(pack(vitals));
  const auto wave = tag::modulate_fsk(bits, tag::DataRate::k100bps, fm::kAudioRate);
  const auto bb = tag::compose_overlay_baseband(wave, core::kOverlayLevel);
  const auto sim = core::simulate(cfg, bb, units::Seconds{wave.duration_seconds() + 0.2});

  const auto demod = rx::demodulate_fsk(sim.backscatter_rx.mono,
                                        tag::DataRate::k100bps, bits.size());
  const auto frame = tag::decode_frame(demod.bits);
  if (!frame || frame->size() != 4) {
    std::printf("  %-9s packet lost\n", label);
    return false;
  }
  const auto& f = *frame;
  const int steps = (f[2] << 8) | f[3];
  std::printf("  %-9s HR %3d bpm, breath %2d /min, steps %5d  (CRC ok)\n",
              label, f[0], f[1], steps);
  return true;
}

}  // namespace

int main() {
  std::puts("Smart fabric: vital signs over FM backscatter");
  std::printf("antenna: %s (worn; body loss applied)\n\n",
              tag::tshirt_meander_antenna(true).name.c_str());

  bool ok = true;
  ok &= stream_vitals(channel::Mobility::kStanding, "standing", {62, 14, 0});
  ok &= stream_vitals(channel::Mobility::kWalking, "walking", {84, 18, 1204});
  ok &= stream_vitals(channel::Mobility::kRunning, "running", {148, 28, 3577});

  // Rate comparison at the paper's Fig. 17b operating points.
  std::puts("\nBER check (paper Fig. 17b):");
  for (const auto& [mobility, label] :
       {std::pair{channel::Mobility::kStanding, "standing"},
        std::pair{channel::Mobility::kWalking, "walking"},
        std::pair{channel::Mobility::kRunning, "running"}}) {
    const auto slow =
        core::run_fabric_ber(mobility, tag::DataRate::k100bps, 160, 1);
    const auto fast =
        core::run_fabric_ber(mobility, tag::DataRate::k1600bps, 480, 2);
    std::printf("  %-9s 100bps BER %.4f | 1.6kbps+2xMRC BER %.4f\n", label,
                slow.ber, fast.ber);
  }
  return ok ? 0 : 1;
}
