// Live radio server: runs a city scenario through the streaming engine in
// simulated real time and serves the decoded tag data — station PS name,
// tag RadioText, FSK payload link stats, per-link BLER — over a local TCP
// socket, the way a deployment gateway would publish poster sightings.
//
// Protocol (line-oriented, one client at a time, 127.0.0.1 only):
//   STATUS\n  -> one JSON line: uptime, station RDS, every decoded link
//   QUIT\n    -> BYE, connection closes
//
// Modes:
//   (default)        daemon: real-time city run (--minutes N, default 10;
//                    --port P, default 7337), serves until the run ends
//   --smoke          CI acceptance: short accelerated run on an ephemeral
//                    port, self-queries STATUS, verifies the station PS
//                    name and an FSK payload decoded, exits 0/1
//   --soak           CI memory gate: 60 s simulated city run (accelerated),
//                    asserts the streaming engine's bounded-buffer ledger
//                    is duration-invariant (within 1.1x of a 5 s run)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/fmbs.h"
#include "core/streaming.h"

namespace {

using namespace fmbs;

// ---- The served scenario ----------------------------------------------------

/// City block the server simulates: one RDS broadcaster, a RadioText poster
/// announcing itself once at the start, and FSK data posters bursting every
/// few seconds; a phone gateway on the backscatter channel and a car radio
/// on the broadcast. The RadioText tag count is fixed (its ~seconds-long
/// waveform dominates per-tag buffering) so the soak ledger stays
/// duration-invariant; the FSK waves it adds are ~40 ms each.
core::Scenario city_scene(double duration_seconds) {
  core::Scenario sc;
  sc.name = "radio-server";
  sc.duration = units::Seconds{duration_seconds};
  sc.seed = 7337;
  sc.station.program.stereo = false;
  sc.station.rds_level = 0.05;
  sc.station.rds_ps_name = "FMBS SRV";

  core::ScenarioTag rt;
  rt.name = "poster-rt";
  rt.rds_radiotext = "FMBS DEMO RT";
  rt.start = units::Seconds{0.3};
  rt.tag_power = units::Dbm{-25.0};
  rt.distance_override = units::Feet{4.0};
  sc.tags.push_back(rt);

  for (std::size_t k = 0; 1.0 + 7.0 * static_cast<double>(k) + 0.2 <=
                          duration_seconds &&
                          k < 64;
       ++k) {
    core::ScenarioTag t;
    t.name = "poster" + std::to_string(k);
    t.num_bits = 64;
    t.packet_bits = 32;
    t.start = units::Seconds{1.0 + 7.0 * static_cast<double>(k)};
    t.tag_power = units::Dbm{-25.0};
    t.distance_override = units::Feet{4.0};
    sc.tags.push_back(std::move(t));
  }

  sc.receivers.push_back(core::phone_listening_to(sc.tags[0].subcarrier));
  core::ScenarioReceiver car;
  car.name = "car";
  car.kind = core::ReceiverKind::kCar;
  car.tune_offset = units::Hertz{0.0};  // the broadcast itself (default is the
                             // backscatter channel)
  sc.receivers.push_back(std::move(car));
  return sc;
}

// ---- Decoded-data feed (shared engine-thread / server-thread state) ---------

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Latest decoded state, updated from the engine's on_link callback
/// (consumer threads) and snapshotted to JSON by the server thread.
class TagFeed {
 public:
  void record(const core::StreamingLinkEvent& ev) {
    const std::lock_guard<std::mutex> lock(m_);
    last_event_seconds_ = ev.stream_seconds;
    ++events_;
    if (ev.kind == core::StreamingLinkEvent::Kind::kStationRds) {
      station_[ev.receiver_index] = ev;
    } else {
      links_[{ev.receiver_index, ev.tag_index}] = ev;
    }
  }

  void finish() {
    const std::lock_guard<std::mutex> lock(m_);
    running_ = false;
  }

  std::string status_json(double uptime_seconds) const {
    const std::lock_guard<std::mutex> lock(m_);
    std::ostringstream out;
    out << "{\"running\": " << (running_ ? "true" : "false")
        << ", \"uptime_seconds\": " << uptime_seconds
        << ", \"events\": " << events_
        << ", \"last_event_seconds\": " << last_event_seconds_
        << ", \"stations\": [";
    bool first = true;
    for (const auto& [rx, ev] : station_) {
      if (!std::exchange(first, false)) out << ", ";
      out << "{\"receiver\": " << rx << ", \"ps\": \""
          << json_escape(ev.link.rds ? ev.link.rds->ps_name : "")
          << "\", \"radiotext\": \""
          << json_escape(ev.link.rds ? ev.link.rds->radiotext : "")
          << "\", \"bler\": " << (ev.link.rds ? ev.link.rds->bler : 1.0)
          << "}";
    }
    out << "], \"links\": [";
    first = true;
    for (const auto& [key, ev] : links_) {
      if (!std::exchange(first, false)) out << ", ";
      out << "{\"receiver\": " << key.first << ", \"tag\": " << key.second
          << ", \"kind\": \""
          << (ev.kind == core::StreamingLinkEvent::Kind::kRdsBurst ? "rds"
                                                                   : "fsk")
          << "\", \"at_seconds\": " << ev.stream_seconds
          << ", \"ber\": " << ev.link.burst.ber.ber
          << ", \"bits_delivered\": " << ev.link.burst.bits_delivered
          << ", \"goodput_bps\": " << ev.link.goodput_bps;
      if (ev.link.rds) {
        out << ", \"bler\": " << ev.link.rds->bler << ", \"radiotext\": \""
            << json_escape(ev.link.rds->radiotext) << "\"";
      }
      out << "}";
    }
    out << "]}";
    return out.str();
  }

 private:
  mutable std::mutex m_;
  bool running_ = true;
  std::size_t events_ = 0;
  double last_event_seconds_ = 0.0;
  std::map<std::size_t, core::StreamingLinkEvent> station_;
  std::map<std::pair<std::size_t, std::size_t>, core::StreamingLinkEvent>
      links_;
};

// ---- TCP plumbing -----------------------------------------------------------

int make_listener(uint16_t port, uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 4) < 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

bool read_line(int fd, std::string* line) {
  line->clear();
  char c = 0;
  while (true) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n <= 0) return false;
    if (c == '\n') return true;
    if (c != '\r') line->push_back(c);
  }
}

void send_all(int fd, const std::string& s) {
  std::size_t off = 0;
  while (off < s.size()) {
    const ssize_t n = ::send(fd, s.data() + off, s.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

/// Accept loop; exits when the listener is shut down. One client at a time —
/// a STATUS poll is a one-round-trip conversation.
void serve(int listen_fd, const TagFeed& feed,
           std::chrono::steady_clock::time_point start) {
  while (true) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) return;  // listener closed: server is done
    std::string line;
    while (read_line(client, &line)) {
      if (line == "STATUS") {
        const double uptime =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        send_all(client, feed.status_json(uptime) + "\n");
      } else if (line == "QUIT") {
        send_all(client, "BYE\n");
        break;
      } else {
        send_all(client, "ERR unknown command (STATUS|QUIT)\n");
      }
    }
    ::close(client);
  }
}

// ---- Modes ------------------------------------------------------------------

int run_daemon(double duration_seconds, uint16_t port, bool real_time,
               bool announce) {
  TagFeed feed;
  uint16_t bound = 0;
  const int listen_fd = make_listener(port, &bound);
  if (listen_fd < 0) {
    std::cerr << "radio_server: cannot listen on 127.0.0.1:" << port << "\n";
    return 1;
  }
  if (announce) {
    std::cerr << "radio_server: 127.0.0.1:" << bound << ", "
              << duration_seconds << " s simulated city run"
              << (real_time ? " (real time)" : "") << "\n";
  }
  const auto start = std::chrono::steady_clock::now();
  std::thread server(serve, listen_fd, std::cref(feed), start);

  core::StreamingConfig cfg;
  cfg.real_time = real_time;
  cfg.on_link = [&feed](const core::StreamingLinkEvent& ev) {
    feed.record(ev);
  };
  int status = 0;
  try {
    const core::ScenarioResult result =
        core::StreamingEngine(cfg).run(city_scene(duration_seconds));
    feed.finish();
    if (announce) {
      std::cerr << "radio_server: run complete, aggregate goodput "
                << result.aggregate_goodput_bps << " bps\n";
    }
  } catch (const std::exception& e) {
    feed.finish();
    std::cerr << "radio_server: engine failed: " << e.what() << "\n";
    status = 1;
  }
  ::shutdown(listen_fd, SHUT_RDWR);
  ::close(listen_fd);
  server.join();
  return status;
}

/// One STATUS round trip against a local server.
std::string query_status(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  send_all(fd, "STATUS\n");
  std::string line;
  const bool ok = read_line(fd, &line);
  send_all(fd, "QUIT\n");
  ::close(fd);
  return ok ? line : "";
}

int run_smoke() {
  // Accelerated 3 s run on an ephemeral port; the engine thread is the
  // daemon, this thread is the client.
  TagFeed feed;
  uint16_t port = 0;
  const int listen_fd = make_listener(0, &port);
  if (listen_fd < 0) {
    std::cerr << "smoke FAIL: cannot bind a loopback socket\n";
    return 1;
  }
  const auto start = std::chrono::steady_clock::now();
  std::thread server(serve, listen_fd, std::cref(feed), start);
  core::StreamingConfig cfg;
  cfg.on_link = [&feed](const core::StreamingLinkEvent& ev) {
    feed.record(ev);
  };
  std::thread engine([&feed, &cfg] {
    core::StreamingEngine(cfg).run(city_scene(3.0));
    feed.finish();
  });

  // Poll STATUS until the run finishes (bounded by a generous wall cap).
  std::string status;
  for (int i = 0; i < 600; ++i) {
    status = query_status(port);
    if (status.find("\"running\": false") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  engine.join();
  ::shutdown(listen_fd, SHUT_RDWR);
  ::close(listen_fd);
  server.join();

  std::cerr << "smoke status: " << status << "\n";
  if (status.find("\"running\": false") == std::string::npos) {
    std::cerr << "smoke FAIL: run never completed over the socket\n";
    return 1;
  }
  if (status.find("\"ps\": \"FMBS SRV\"") == std::string::npos) {
    std::cerr << "smoke FAIL: station PS name not served\n";
    return 1;
  }
  if (status.find("\"radiotext\": \"FMBS DEMO RT\"") == std::string::npos) {
    std::cerr << "smoke FAIL: tag RadioText not served\n";
    return 1;
  }
  if (status.find("\"kind\": \"fsk\"") == std::string::npos) {
    std::cerr << "smoke FAIL: no FSK payload link served\n";
    return 1;
  }
  std::cerr << "smoke OK\n";
  return 0;
}

int run_soak() {
  // 60 s simulated city run, accelerated; the O(1)-memory gate is the
  // engine's own bounded-buffer ledger: a 12x longer run may cost at most
  // 10% more buffering than a 5 s run.
  core::StreamingEngine engine{core::StreamingConfig{}};
  const auto short_bytes =
      engine.run(city_scene(5.0)).scene.streaming_peak_buffer_bytes;
  const core::ScenarioResult long_run = engine.run(city_scene(60.0));
  const auto long_bytes = long_run.scene.streaming_peak_buffer_bytes;
  std::cerr << "soak: 5 s run " << short_bytes << " bytes, 60 s run "
            << long_bytes << " bytes\n";
  if (short_bytes == 0 || long_bytes == 0) {
    std::cerr << "soak FAIL: no bounded-buffer ledger reported\n";
    return 1;
  }
  if (static_cast<double>(long_bytes) >
      1.1 * static_cast<double>(short_bytes)) {
    std::cerr << "soak FAIL: streaming buffer grows with duration\n";
    return 1;
  }
  std::size_t links = 0;
  for (const auto& rr : long_run.receivers) links += rr.links.size();
  if (links == 0) {
    std::cerr << "soak FAIL: 60 s run decoded nothing\n";
    return 1;
  }
  std::cerr << "soak OK: " << links << " links decoded at O(1) buffering\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double minutes = 10.0;
  uint16_t port = 7337;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") return run_smoke();
    if (arg == "--soak") return run_soak();
    if (arg == "--minutes" && i + 1 < argc) minutes = std::stod(argv[++i]);
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::stoi(argv[++i]));
    }
  }
  return run_daemon(minutes * 60.0, port, /*real_time=*/true,
                    /*announce=*/true);
}
