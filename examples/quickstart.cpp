// Quickstart: the smallest complete use of the library.
//
// A news station broadcasts on 94.9 MHz; a poster-mounted tag backscatters
// the message "HELLO FM BACKSCATTER" as a CRC-framed packet at 100 bps into
// the empty channel 600 kHz up; a phone tuned to 95.5 MHz decodes it from
// its FM radio audio output. Everything — station, RF, tag switch, channel,
// receiver — is the real pipeline.
//
//   $ ./quickstart
#include <cstdio>
#include <string>

#include "core/fmbs.h"

int main() {
  using namespace fmbs;

  // 1. Describe the scene: program genre, power at the tag, tag->phone range.
  core::ExperimentPoint point;
  point.genre = audio::ProgramGenre::kNews;
  point.tag_power = units::Dbm{-35.0};  // typical urban ambient power (paper Fig. 2)
  point.distance = units::Feet{6.0};
  core::SystemConfig cfg = core::make_system(point);

  // 2. Build the tag's transmission: frame the message, modulate 2-FSK.
  const std::string message = "HELLO FM BACKSCATTER";
  const std::vector<std::uint8_t> payload(message.begin(), message.end());
  const auto bits = tag::encode_frame(payload);
  const auto waveform = tag::modulate_fsk(bits, tag::DataRate::k100bps,
                                          fm::kAudioRate);
  const auto tag_baseband =
      tag::compose_overlay_baseband(waveform, core::kOverlayLevel);

  std::printf("tag: %zu payload bytes -> %zu bits -> %.2f s on air at 100 bps\n",
              payload.size(), bits.size(), waveform.duration_seconds());

  // 3. Run the physical simulation.
  const double duration = waveform.duration_seconds() + 0.2;
  const core::SimulationResult sim = core::simulate(cfg, tag_baseband, units::Seconds{duration});
  std::printf("scene: backscatter reaches the phone at %.1f dBm (budget %+.1f dB)\n",
              sim.backscatter_rx_power_dbm, sim.budget.backscatter_gain.raw());

  // 4. Decode on the phone: FM audio out -> FSK demod -> frame decode.
  const auto demod = rx::demodulate_fsk(sim.backscatter_rx.mono,
                                        tag::DataRate::k100bps, bits.size());
  const auto decoded = tag::decode_frame(demod.bits);
  if (!decoded) {
    std::puts("no intact frame decoded (try a stronger scene)");
    return 1;
  }
  const std::string text(decoded->begin(), decoded->end());
  std::printf("phone decoded: \"%s\" (CRC ok)\n", text.c_str());
  return text == message ? 0 : 1;
}
