// Cooperative backscatter (paper section 3.3): two phones near a poster
// share their FM audio over Wi-Fi Direct / Bluetooth and form a 2x2 MIMO
// system. Phone 1 tunes to the ambient station, phone 2 to the backscatter
// channel; after x10 resampling, cross-correlation alignment and 13 kHz
// pilot AGC calibration, subtracting the streams cancels the station and
// leaves clean tag audio. Writes before/after WAVs.
//
//   $ ./cooperative_streaming [out_dir]
#include <cstdio>
#include <string>

#include "core/fmbs.h"

int main(int argc, char** argv) {
  using namespace fmbs;
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  core::ExperimentPoint point;
  point.genre = audio::ProgramGenre::kNews;
  point.tag_power = units::Dbm{-35.0};
  point.distance = units::Feet{6.0};
  core::SystemConfig cfg = core::make_system(point);
  cfg.capture_ambient_receiver = true;  // phone 1
  cfg.phone.enable_agc = true;          // the problem the pilot calibrates out
  cfg.phone.agc.attack_seconds = 0.4;
  cfg.phone.agc.release_seconds = 2.0;
  cfg.phone.agc.min_gain = 0.5;
  cfg.phone.agc.max_gain = 2.0;

  // Tag content: a speech clip, preceded by the 13 kHz calibration preamble.
  const double seconds = 4.0;
  audio::SpeechConfig sc;
  sc.pitch_hz = 170.0;
  const audio::MonoBuffer speech =
      audio::synthesize_speech(sc, seconds, fm::kAudioRate, 42);
  tag::CoopPilotConfig pilot;
  const auto bb = tag::compose_cooperative_baseband(speech, core::kOverlayLevel,
                                                    pilot);

  std::puts("simulating two phones next to the poster...");
  const core::SimulationResult sim =
      core::simulate(cfg, bb, units::Seconds{seconds + pilot.preamble_seconds + 0.2});

  rx::CooperativeConfig coop;
  coop.pilot = pilot;
  const rx::CooperativeResult result = rx::cancel_ambient(
      sim.ambient_rx->mono, sim.backscatter_rx.mono, coop);

  std::printf("alignment: %.1f samples @ x10 rate; AGC ratio %.2f; ambient "
              "gain %.2f\n",
              result.delay_samples, result.agc_ratio, result.ambient_gain);

  const double pesq_before = audio::pesq_like(speech, sim.backscatter_rx.mono);
  const double pesq_after = audio::pesq_like(speech, result.backscatter_audio);
  std::printf("PESQ-like: overlay (phone 2 alone) %.2f -> cooperative %.2f\n",
              pesq_before, pesq_after);
  std::printf("(paper: ~2 -> ~4)\n");

  audio::write_wav(out_dir + "/coop_phone2_composite.wav",
                   sim.backscatter_rx.mono);
  audio::write_wav(out_dir + "/coop_cancelled.wav", result.backscatter_audio);
  std::printf("wrote %s/coop_phone2_composite.wav and %s/coop_cancelled.wav\n",
              out_dir.c_str(), out_dir.c_str());
  return pesq_after > pesq_before ? 0 : 1;
}
