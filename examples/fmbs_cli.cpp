// fmbs_cli — run any single experiment point from the command line, so the
// library is usable without writing C++. Examples:
//
//   fmbs_cli tone  --power -30 --distance 8 --freq 1000
//   fmbs_cli ber   --power -50 --distance 12 --rate 1600 --bits 640
//   fmbs_cli ber   --power -60 --distance 14 --rate 1600 --fec conv
//   fmbs_cli pesq  --power -40 --distance 8 --technique coop
//   fmbs_cli plan  --city Seattle
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/fmbs.h"

namespace {

using namespace fmbs;

std::map<std::string, std::string> parse_flags(int argc, char** argv, int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      std::fprintf(stderr, "expected --flag value, got %s\n", argv[i]);
      std::exit(2);
    }
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

double flag_or(const std::map<std::string, std::string>& flags,
               const std::string& name, double fallback) {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : std::atof(it->second.c_str());
}

std::string flag_or(const std::map<std::string, std::string>& flags,
                    const std::string& name, const std::string& fallback) {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

core::ExperimentPoint make_point(const std::map<std::string, std::string>& flags) {
  core::ExperimentPoint point;
  point.tag_power = units::Dbm{flag_or(flags, "power", -30.0)};
  point.distance = units::Feet{flag_or(flags, "distance", 4.0)};
  point.seed = static_cast<std::uint64_t>(flag_or(flags, "seed", 1.0));
  const std::string genre = flag_or(flags, "genre", std::string("news"));
  if (genre == "news") point.genre = audio::ProgramGenre::kNews;
  else if (genre == "mixed") point.genre = audio::ProgramGenre::kMixed;
  else if (genre == "pop") point.genre = audio::ProgramGenre::kPop;
  else if (genre == "rock") point.genre = audio::ProgramGenre::kRock;
  else if (genre == "silence") point.genre = audio::ProgramGenre::kSilence;
  if (flag_or(flags, "receiver", std::string("phone")) == "car") {
    point.receiver = core::ReceiverKind::kCar;
  }
  return point;
}

tag::DataRate rate_from(double bps) {
  if (bps <= 100.0) return tag::DataRate::k100bps;
  if (bps <= 1600.0) return tag::DataRate::k1600bps;
  return tag::DataRate::k3200bps;
}

int cmd_tone(const std::map<std::string, std::string>& flags) {
  const core::ExperimentPoint point = make_point(flags);
  const double freq = flag_or(flags, "freq", 1000.0);
  const bool stereo = flag_or(flags, "band", std::string("mono")) == "stereo";
  const double snr = core::run_tone_snr(point, units::Hertz{freq}, stereo, units::Seconds{1.0});
  std::printf("tone %.0f Hz @ %.0f dBm, %.0f ft (%s band): SNR %.1f dB\n", freq,
              point.tag_power.raw(), point.distance.raw(),
              stereo ? "stereo" : "mono", snr);
  return 0;
}

int cmd_ber(const std::map<std::string, std::string>& flags) {
  const core::ExperimentPoint point = make_point(flags);
  const tag::DataRate rate = rate_from(flag_or(flags, "rate", 100.0));
  const auto bits = static_cast<std::size_t>(flag_or(flags, "bits", 320.0));
  const std::string fec = flag_or(flags, "fec", std::string("none"));
  const std::string technique =
      flag_or(flags, "technique", std::string("overlay"));
  const auto mrc = static_cast<std::size_t>(flag_or(flags, "mrc", 1.0));

  rx::BerResult r;
  if (fec == "hamming") {
    r = core::run_overlay_ber_coded(point, rate, bits, tag::FecScheme::kHamming74);
  } else if (fec == "conv") {
    r = core::run_overlay_ber_coded(point, rate, bits,
                                    tag::FecScheme::kConvolutionalK7);
  } else if (technique == "stereo") {
    r = core::run_stereo_ber(point, rate, bits);
  } else if (mrc > 1) {
    r = core::run_overlay_ber_mrc(point, rate, bits, mrc);
  } else {
    r = core::run_overlay_ber(point, rate, bits);
  }
  std::printf("%s %s @ %.0f dBm, %.0f ft: BER %.4f (%zu/%zu errors)\n",
              technique.c_str(), tag::to_string(rate), point.tag_power.raw(),
              point.distance.raw(), r.ber, r.bit_errors, r.bits_compared);
  return 0;
}

int cmd_pesq(const std::map<std::string, std::string>& flags) {
  const core::ExperimentPoint point = make_point(flags);
  const std::string technique =
      flag_or(flags, "technique", std::string("overlay"));
  double score = 0.0;
  if (technique == "coop") {
    score = core::run_cooperative_pesq(point, units::Seconds{2.5});
  } else if (technique == "stereo") {
    score = core::run_stereo_pesq(point, units::Seconds{2.5});
  } else {
    score = core::run_overlay_pesq(point, units::Seconds{2.5});
  }
  std::printf("%s audio @ %.0f dBm, %.0f ft: PESQ-like %.2f\n",
              technique.c_str(), point.tag_power.raw(), point.distance.raw(), score);
  return 0;
}

int cmd_plan(const std::map<std::string, std::string>& flags) {
  const std::string city_name = flag_or(flags, "city", std::string("Seattle"));
  for (const auto& city : survey::builtin_city_spectra()) {
    if (city.name != city_name) continue;
    int best_channel = city.detectable_channels.front();
    double best_power = -1e9;
    for (std::size_t i = 0; i < city.detectable_channels.size(); ++i) {
      if (city.detectable_power_dbm[i] > best_power) {
        best_power = city.detectable_power_dbm[i];
        best_channel = city.detectable_channels[i];
      }
    }
    const auto choice = survey::choose_backscatter_shift(city, best_channel);
    tag::PowerModelConfig pm;
    pm.subcarrier = units::Hertz{std::abs(choice.shift_hz)};
    const auto power = tag::tag_power(pm);
    std::printf("%s: ride %.1f MHz (%.1f dBm), backscatter to %.1f MHz "
                "(f_back %+.0f kHz), tag draws %.2f uW\n",
                city.name.c_str(),
                survey::channel_frequency_hz(best_channel) / 1e6, best_power,
                survey::channel_frequency_hz(choice.target_channel) / 1e6,
                choice.shift_hz / 1e3, power.total_uw);
    return 0;
  }
  std::fprintf(stderr, "unknown city '%s' (try SFO/Seattle/Boston/Chicago/LA)\n",
               city_name.c_str());
  return 2;
}

void usage() {
  std::puts(
      "usage: fmbs_cli <tone|ber|pesq|plan> [--flag value ...]\n"
      "  common:  --power dBm  --distance ft  --genre news|mixed|pop|rock\n"
      "           --receiver phone|car  --seed N\n"
      "  tone:    --freq Hz  --band mono|stereo\n"
      "  ber:     --rate 100|1600|3200  --bits N  --technique overlay|stereo\n"
      "           --mrc N  --fec none|hamming|conv\n"
      "  pesq:    --technique overlay|stereo|coop\n"
      "  plan:    --city Seattle");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  if (cmd == "tone") return cmd_tone(flags);
  if (cmd == "ber") return cmd_ber(flags);
  if (cmd == "pesq") return cmd_pesq(flags);
  if (cmd == "plan") return cmd_plan(flags);
  usage();
  return 2;
}
